// Cross-validation of the relate engine against an independent Monte-Carlo
// oracle. The oracle gathers *evidence of non-emptiness* for matrix entries
// by sampling: area entries (I/I, I/E, E/I) from random points located
// against both polygons, boundary-row entries from points sampled on the
// boundary of one polygon and located against the other. Every entry the
// oracle proves non-empty must be non-empty (with at least that dimension)
// in the engine's matrix. The oracle cannot prove emptiness, so the check
// is one-sided — but it is built from nothing except point location, so it
// shares no code path with the boundary-arrangement logic it validates.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/de9im/relate_engine.h"
#include "src/geometry/point_in_polygon.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace stj::de9im {
namespace {

// True when p lies within `eps` of some edge of `poly` — used to discard
// boundary samples whose rounding could flip their classification (a point
// sampled on a slanted shared edge lands half an ulp off both boundaries).
bool NearBoundary(const Point& p, const Polygon& poly, double eps) {
  bool near = false;
  poly.ForEachEdge([&](const Segment& edge) {
    if (near) return;
    const double dx = edge.b.x - edge.a.x;
    const double dy = edge.b.y - edge.a.y;
    const double len_sq = dx * dx + dy * dy;
    double t = len_sq > 0
                   ? ((p.x - edge.a.x) * dx + (p.y - edge.a.y) * dy) / len_sq
                   : 0.0;
    t = std::clamp(t, 0.0, 1.0);
    const Point closest{edge.a.x + t * dx, edge.a.y + t * dy};
    near = DistanceSquared(p, closest) <= eps * eps;
  });
  return near;
}

// Samples points on the boundary of `poly` (on edge interiors, excluding
// vertices) and reports their location against `other`. Samples landing
// within rounding distance of `other`'s boundary are discarded — they are
// really boundary/boundary contact, not interior/exterior evidence.
void SampleBoundaryRow(Rng* rng, const Polygon& poly, const Polygon& other,
                       int samples_per_edge, bool* in_interior,
                       bool* in_exterior) {
  const Box bounds = other.Bounds();
  const double eps =
      1e-9 * std::max({bounds.Width(), bounds.Height(), 1.0});
  poly.ForEachEdge([&](const Segment& edge) {
    for (int i = 0; i < samples_per_edge; ++i) {
      const double t = rng->Uniform(0.05, 0.95);
      const Point p{edge.a.x + t * (edge.b.x - edge.a.x),
                    edge.a.y + t * (edge.b.y - edge.a.y)};
      if (NearBoundary(p, other, eps)) continue;
      switch (Locate(p, other)) {
        case Location::kInterior: *in_interior = true; break;
        case Location::kExterior: *in_exterior = true; break;
        case Location::kBoundary: break;
      }
    }
  });
}

void CheckAgainstOracle(Rng* rng, const Polygon& r, const Polygon& s) {
  const Matrix matrix = RelateEngine::Relate(r, s);

  // Area entries from random interior/exterior point sampling.
  Box space = r.Bounds();
  space.Expand(s.Bounds());
  space = space.Inflated(0.2 * std::max(space.Width(), space.Height()));
  bool ii = false;
  bool ie = false;
  bool ei = false;
  for (int i = 0; i < 4000; ++i) {
    const Point p{rng->Uniform(space.min.x, space.max.x),
                  rng->Uniform(space.min.y, space.max.y)};
    const Location in_r = Locate(p, r);
    const Location in_s = Locate(p, s);
    if (in_r == Location::kBoundary || in_s == Location::kBoundary) continue;
    if (in_r == Location::kInterior && in_s == Location::kInterior) ii = true;
    if (in_r == Location::kInterior && in_s == Location::kExterior) ie = true;
    if (in_r == Location::kExterior && in_s == Location::kInterior) ei = true;
  }
  if (ii) {
    EXPECT_EQ(matrix.At(Part::kInterior, Part::kInterior), Dim::k2);
  }
  if (ie) {
    EXPECT_EQ(matrix.At(Part::kInterior, Part::kExterior), Dim::k2);
  }
  if (ei) {
    EXPECT_EQ(matrix.At(Part::kExterior, Part::kInterior), Dim::k2);
  }

  // Boundary-row entries from on-boundary sampling.
  bool bi = false;
  bool be = false;
  SampleBoundaryRow(rng, r, s, 3, &bi, &be);
  if (bi) {
    EXPECT_EQ(matrix.At(Part::kBoundary, Part::kInterior), Dim::k1);
  }
  if (be) {
    EXPECT_EQ(matrix.At(Part::kBoundary, Part::kExterior), Dim::k1);
  }
  bool ib = false;
  bool eb = false;
  SampleBoundaryRow(rng, s, r, 3, &ib, &eb);
  if (ib) {
    EXPECT_EQ(matrix.At(Part::kInterior, Part::kBoundary), Dim::k1);
  }
  if (eb) {
    EXPECT_EQ(matrix.At(Part::kExterior, Part::kBoundary), Dim::k1);
  }
}

TEST(RelateOracle, RandomBlobPairs) {
  Rng rng(601);
  for (int i = 0; i < 60; ++i) {
    const Point c{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    const Polygon a = test::RandomBlob(
        &rng, c, rng.LogUniform(1.0, 6.0),
        static_cast<size_t>(rng.UniformInt(6, 60)), 0.3);
    Polygon b;
    const double mix = rng.NextDouble();
    if (mix < 0.4) {
      b = test::RandomBlob(&rng,
                           Point{c.x + rng.Uniform(-4, 4),
                                 c.y + rng.Uniform(-4, 4)},
                           rng.LogUniform(1.0, 6.0),
                           static_cast<size_t>(rng.UniformInt(6, 60)), 0.3);
    } else if (mix < 0.6) {
      b = ScaleAbout(a, c, rng.Uniform(0.4, 0.9));
    } else if (mix < 0.7) {
      b = a;
    } else if (mix < 0.8 && !a.Holes().empty()) {
      b = Polygon(a.Holes()[0]);
    } else {
      b = FillHoles(a);
    }
    CheckAgainstOracle(&rng, a, b);
  }
}

TEST(RelateOracle, FixtureShapes) {
  Rng rng(603);
  const Polygon shapes[] = {
      test::Square(0, 0, 4, 4),
      test::Square(1, 1, 3, 3),
      test::Square(4, 0, 8, 4),
      test::SquareWithHole(0, 0, 8, 8, 2),
      test::Triangle(Point{0, 0}, Point{8, 0}, Point{4, 7}),
      test::Square(2, 0, 6, 4),
  };
  for (size_t i = 0; i < std::size(shapes); ++i) {
    for (size_t j = 0; j < std::size(shapes); ++j) {
      SCOPED_TRACE("pair " + std::to_string(i) + "," + std::to_string(j));
      CheckAgainstOracle(&rng, shapes[i], shapes[j]);
    }
  }
}

}  // namespace
}  // namespace stj::de9im
