// Property tests for the relate engine on generated geometry with known
// ground truth by construction.

#include <gtest/gtest.h>

#include "src/datasets/blob.h"
#include "src/datasets/tessellation.h"
#include "src/de9im/relate_engine.h"
#include "src/geometry/point_on_surface.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace stj::de9im {
namespace {

TEST(RelatePropertyTest, ExactCopyIsEquals) {
  Rng rng(101);
  for (int i = 0; i < 40; ++i) {
    const Polygon blob = test::RandomBlob(
        &rng, Point{rng.Uniform(0, 10), rng.Uniform(0, 10)},
        rng.LogUniform(0.1, 2.0), static_cast<size_t>(rng.UniformInt(4, 150)),
        /*hole_probability=*/0.3);
    EXPECT_EQ(FindRelationExact(blob, blob), Relation::kEquals) << i;
  }
}

TEST(RelatePropertyTest, CenterScaledCopyIsInside) {
  Rng rng(103);
  for (int i = 0; i < 40; ++i) {
    const Point center{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    BlobParams params;
    params.center = center;
    params.mean_radius = rng.LogUniform(0.2, 2.0);
    params.vertices = static_cast<size_t>(rng.UniformInt(8, 200));
    params.irregularity = rng.Uniform(0.2, 0.5);
    const Polygon blob = MakeBlob(&rng, params);
    // Star-shaped about `center`: shrinking about the center stays strictly
    // inside.
    const Polygon smaller = ScaleAbout(blob, center, 0.6);
    EXPECT_EQ(FindRelationExact(smaller, blob), Relation::kInside) << i;
    EXPECT_EQ(FindRelationExact(blob, smaller), Relation::kContains) << i;
  }
}

TEST(RelatePropertyTest, FarTranslationIsDisjoint) {
  Rng rng(105);
  for (int i = 0; i < 40; ++i) {
    const Polygon blob = test::RandomBlob(
        &rng, Point{rng.Uniform(0, 10), rng.Uniform(0, 10)},
        rng.LogUniform(0.1, 2.0), static_cast<size_t>(rng.UniformInt(4, 100)));
    const double width = blob.Bounds().Width();
    const Polygon moved = Translate(blob, width * 2 + 1.0, 0.0);
    EXPECT_EQ(FindRelationExact(blob, moved), Relation::kDisjoint) << i;
  }
}

TEST(RelatePropertyTest, TessellationNeighborsMeet) {
  Rng rng(107);
  TessellationParams params;
  params.cols = 5;
  params.rows = 5;
  params.edge_points = 6;
  const std::vector<Polygon> cells = MakeTessellation(&rng, params);
  // Horizontally adjacent cells share a vertical chain: meets with dim-1 BB.
  for (uint32_t row = 0; row < 5; ++row) {
    for (uint32_t col = 0; col + 1 < 5; ++col) {
      const Polygon& a = cells[row * 5 + col];
      const Polygon& b = cells[row * 5 + col + 1];
      const Matrix m = RelateMatrix(a, b);
      EXPECT_EQ(MostSpecificRelation(m), Relation::kMeets)
          << "row " << row << " col " << col << " got " << m.ToString();
      EXPECT_EQ(m.At(Part::kBoundary, Part::kBoundary), Dim::k1);
    }
  }
  // Diagonal neighbours share exactly one corner: meets with dim-0 BB.
  const Matrix diag = RelateMatrix(cells[0], cells[6]);
  EXPECT_EQ(MostSpecificRelation(diag), Relation::kMeets);
  EXPECT_EQ(diag.At(Part::kBoundary, Part::kBoundary), Dim::k0);
  // Non-adjacent cells are disjoint.
  EXPECT_EQ(FindRelationExact(cells[0], cells[12]), Relation::kDisjoint);
}

TEST(RelatePropertyTest, NestedTessellationFineCoveredByCoarse) {
  Rng rng(109);
  TessellationParams params;
  params.cols = 6;
  params.rows = 6;
  params.edge_points = 4;
  const NestedTessellation nested =
      MakeNestedTessellation(&rng, params, /*block=*/3);
  ASSERT_EQ(nested.coarse.size(), 4u);
  // Every fine cell is covered by (rim) or inside (interior of) its block.
  for (uint32_t fy = 0; fy < 6; ++fy) {
    for (uint32_t fx = 0; fx < 6; ++fx) {
      const Polygon& fine = nested.fine[fy * 6 + fx];
      const Polygon& coarse = nested.coarse[(fy / 3) * 2 + (fx / 3)];
      const Relation rel = FindRelationExact(fine, coarse);
      const bool rim = (fx % 3 == 0) || (fx % 3 == 2) || (fy % 3 == 0) ||
                       (fy % 3 == 2);
      if (rim) {
        EXPECT_EQ(rel, Relation::kCoveredBy) << fx << "," << fy;
      } else {
        EXPECT_EQ(rel, Relation::kInside) << fx << "," << fy;
      }
      // And the coarse cell covers/contains it back.
      EXPECT_EQ(FindRelationExact(coarse, fine), Converse(rel));
    }
  }
}

TEST(RelatePropertyTest, TransposeSymmetryOnRandomPairs) {
  Rng rng(111);
  for (int i = 0; i < 100; ++i) {
    const Polygon a = test::RandomBlob(
        &rng, Point{rng.Uniform(0, 4), rng.Uniform(0, 4)},
        rng.LogUniform(0.2, 2.0), static_cast<size_t>(rng.UniformInt(4, 80)),
        0.25);
    const Polygon b = test::RandomBlob(
        &rng, Point{rng.Uniform(0, 4), rng.Uniform(0, 4)},
        rng.LogUniform(0.2, 2.0), static_cast<size_t>(rng.UniformInt(4, 80)),
        0.25);
    const Matrix ab = RelateMatrix(a, b);
    const Matrix ba = RelateMatrix(b, a);
    ASSERT_EQ(ab.ToString(), ba.Transposed().ToString()) << "pair " << i;
    // Structural invariants of valid areal matrices.
    EXPECT_EQ(ab.At(Part::kExterior, Part::kExterior), Dim::k2);
    // Interiors of valid polygons are 2-D: II is F or 2, never 0/1.
    const Dim ii = ab.At(Part::kInterior, Part::kInterior);
    EXPECT_TRUE(ii == Dim::kFalse || ii == Dim::k2);
  }
}

TEST(RelatePropertyTest, FilledVersionCoversDonut) {
  Rng rng(113);
  int tested = 0;
  for (int i = 0; i < 120 && tested < 25; ++i) {
    const Polygon blob = test::RandomBlob(
        &rng, Point{rng.Uniform(0, 10), rng.Uniform(0, 10)},
        rng.LogUniform(0.5, 2.0), static_cast<size_t>(rng.UniformInt(12, 120)),
        /*hole_probability=*/1.0);
    if (blob.Holes().empty()) continue;
    ++tested;
    const Polygon filled = FillHoles(blob);
    EXPECT_EQ(FindRelationExact(blob, filled), Relation::kCoveredBy) << i;
    EXPECT_EQ(FindRelationExact(filled, blob), Relation::kCovers) << i;
  }
  EXPECT_GE(tested, 10);
}

TEST(RelatePropertyTest, HoleFillerMeetsDonut) {
  Rng rng(115);
  int tested = 0;
  for (int i = 0; i < 120 && tested < 25; ++i) {
    const Polygon blob = test::RandomBlob(
        &rng, Point{rng.Uniform(0, 10), rng.Uniform(0, 10)},
        rng.LogUniform(0.5, 2.0), static_cast<size_t>(rng.UniformInt(12, 120)),
        /*hole_probability=*/1.0);
    if (blob.Holes().empty()) continue;
    ++tested;
    const Polygon filler(blob.Holes()[0]);
    const Matrix m = RelateMatrix(filler, blob);
    EXPECT_EQ(MostSpecificRelation(m), Relation::kMeets) << i;
    EXPECT_EQ(m.At(Part::kBoundary, Part::kBoundary), Dim::k1) << i;
  }
  EXPECT_GE(tested, 10);
}

}  // namespace
}  // namespace stj::de9im
