#include "src/de9im/relation.h"

#include <gtest/gtest.h>

namespace stj::de9im {
namespace {

Matrix M(const char* code) { return *Matrix::FromString(code); }

TEST(RelationSet, BasicSetOperations) {
  RelationSet set{Relation::kMeets, Relation::kIntersects};
  EXPECT_TRUE(set.Contains(Relation::kMeets));
  EXPECT_FALSE(set.Contains(Relation::kEquals));
  EXPECT_EQ(set.Count(), 2);
  set.Add(Relation::kEquals);
  EXPECT_EQ(set.Count(), 3);
  set.Remove(Relation::kMeets);
  EXPECT_FALSE(set.Contains(Relation::kMeets));
  EXPECT_EQ(RelationSet::All().Count(), 8);
  EXPECT_TRUE(RelationSet().Empty());
}

// Canonical matrices for polygon pairs in each relation.
constexpr const char* kDisjointM = "FF2FF1212";
constexpr const char* kEqualsM = "2FFF1FFF2";
constexpr const char* kInsideM = "2FF1FF212";     // strict: BB = F
constexpr const char* kContainsM = "212FF1FF2";   // transpose of inside
constexpr const char* kCoveredByM = "2FF11F212";  // shared boundary piece
constexpr const char* kCoversM = "212F11FF2";
constexpr const char* kMeetsPointM = "FF2F01212";
constexpr const char* kMeetsLineM = "FF2F11212";
constexpr const char* kOverlapM = "212101212";

TEST(RelationHolds, DisjointMatrix) {
  EXPECT_TRUE(RelationHolds(Relation::kDisjoint, M(kDisjointM)));
  EXPECT_FALSE(RelationHolds(Relation::kIntersects, M(kDisjointM)));
  EXPECT_FALSE(RelationHolds(Relation::kMeets, M(kDisjointM)));
}

TEST(RelationHolds, EqualsImpliesCoversAndCoveredBy) {
  const Matrix m = M(kEqualsM);
  EXPECT_TRUE(RelationHolds(Relation::kEquals, m));
  EXPECT_TRUE(RelationHolds(Relation::kCovers, m));
  EXPECT_TRUE(RelationHolds(Relation::kCoveredBy, m));
  EXPECT_TRUE(RelationHolds(Relation::kIntersects, m));
  // Strict inside/contains exclude boundary contact.
  EXPECT_FALSE(RelationHolds(Relation::kInside, m));
  EXPECT_FALSE(RelationHolds(Relation::kContains, m));
  EXPECT_FALSE(RelationHolds(Relation::kMeets, m));
}

TEST(RelationHolds, InsideImpliesCoveredByOnly) {
  const Matrix m = M(kInsideM);
  EXPECT_TRUE(RelationHolds(Relation::kInside, m));
  EXPECT_TRUE(RelationHolds(Relation::kCoveredBy, m));
  EXPECT_FALSE(RelationHolds(Relation::kEquals, m));
  EXPECT_FALSE(RelationHolds(Relation::kContains, m));
  EXPECT_FALSE(RelationHolds(Relation::kCovers, m));
}

TEST(RelationHolds, CoveredByWithContactIsNotInside) {
  const Matrix m = M(kCoveredByM);
  EXPECT_TRUE(RelationHolds(Relation::kCoveredBy, m));
  EXPECT_FALSE(RelationHolds(Relation::kInside, m));
}

TEST(RelationHolds, MeetsBothDimensions) {
  EXPECT_TRUE(RelationHolds(Relation::kMeets, M(kMeetsPointM)));
  EXPECT_TRUE(RelationHolds(Relation::kMeets, M(kMeetsLineM)));
  EXPECT_TRUE(RelationHolds(Relation::kIntersects, M(kMeetsPointM)));
  EXPECT_FALSE(RelationHolds(Relation::kDisjoint, M(kMeetsPointM)));
}

TEST(MostSpecificRelation, SpecificBeatsGeneral) {
  EXPECT_EQ(MostSpecificRelation(M(kEqualsM)), Relation::kEquals);
  EXPECT_EQ(MostSpecificRelation(M(kInsideM)), Relation::kInside);
  EXPECT_EQ(MostSpecificRelation(M(kContainsM)), Relation::kContains);
  EXPECT_EQ(MostSpecificRelation(M(kCoveredByM)), Relation::kCoveredBy);
  EXPECT_EQ(MostSpecificRelation(M(kCoversM)), Relation::kCovers);
  EXPECT_EQ(MostSpecificRelation(M(kMeetsPointM)), Relation::kMeets);
  EXPECT_EQ(MostSpecificRelation(M(kMeetsLineM)), Relation::kMeets);
  EXPECT_EQ(MostSpecificRelation(M(kOverlapM)), Relation::kIntersects);
  EXPECT_EQ(MostSpecificRelation(M(kDisjointM)), Relation::kDisjoint);
}

TEST(MostSpecificRelation, RespectsCandidateRestriction) {
  // An equals matrix refined with equals excluded reports covered-by.
  const RelationSet no_equals{Relation::kCoveredBy, Relation::kCovers,
                              Relation::kIntersects};
  EXPECT_EQ(MostSpecificRelation(M(kEqualsM), no_equals),
            Relation::kCoveredBy);
}

TEST(Converse, SwapsDirectionalRelations) {
  EXPECT_EQ(Converse(Relation::kInside), Relation::kContains);
  EXPECT_EQ(Converse(Relation::kContains), Relation::kInside);
  EXPECT_EQ(Converse(Relation::kCoveredBy), Relation::kCovers);
  EXPECT_EQ(Converse(Relation::kCovers), Relation::kCoveredBy);
  EXPECT_EQ(Converse(Relation::kEquals), Relation::kEquals);
  EXPECT_EQ(Converse(Relation::kMeets), Relation::kMeets);
  EXPECT_EQ(Converse(Relation::kDisjoint), Relation::kDisjoint);
  EXPECT_EQ(Converse(Relation::kIntersects), Relation::kIntersects);
}

TEST(Relation, TransposeConsistencyAcrossCanonicalMatrices) {
  // relation(r,s) on m must equal Converse(relation(s,r)) on transpose(m).
  const char* codes[] = {kDisjointM, kEqualsM,    kInsideM,
                         kContainsM, kCoveredByM, kCoversM,
                         kMeetsLineM, kOverlapM};
  for (const char* code : codes) {
    const Matrix m = M(code);
    EXPECT_EQ(MostSpecificRelation(m),
              Converse(MostSpecificRelation(m.Transposed())))
        << code;
  }
}

}  // namespace
}  // namespace stj::de9im
