#include "src/geometry/box.h"

#include <gtest/gtest.h>

namespace stj {
namespace {

Box MakeBox(double x0, double y0, double x1, double y1) {
  return Box::Of(Point{x0, y0}, Point{x1, y1});
}

TEST(Box, EmptyBoxBehaviour) {
  const Box empty = Box::Empty();
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_FALSE(empty.Intersects(MakeBox(0, 0, 1, 1)));
  EXPECT_FALSE(MakeBox(0, 0, 1, 1).Intersects(empty));
  EXPECT_FALSE(empty.Contains(Point{0, 0}));
  EXPECT_EQ(empty.Area(), 0.0);
}

TEST(Box, ExpandFromEmpty) {
  Box box = Box::Empty();
  box.Expand(Point{3, 4});
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_EQ(box.min, (Point{3, 4}));
  EXPECT_EQ(box.max, (Point{3, 4}));
  box.Expand(Point{1, 7});
  EXPECT_EQ(box.min, (Point{1, 4}));
  EXPECT_EQ(box.max, (Point{3, 7}));
}

TEST(Box, IntersectionIncludesSharedEdgesAndCorners) {
  const Box a = MakeBox(0, 0, 1, 1);
  EXPECT_TRUE(a.Intersects(MakeBox(1, 0, 2, 1)));    // shared edge
  EXPECT_TRUE(a.Intersects(MakeBox(1, 1, 2, 2)));    // shared corner
  EXPECT_FALSE(a.Intersects(MakeBox(1.001, 0, 2, 1)));
}

TEST(Box, ContainsBoxAllowsBoundaryContact) {
  const Box outer = MakeBox(0, 0, 10, 10);
  EXPECT_TRUE(outer.Contains(MakeBox(0, 0, 5, 5)));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(MakeBox(-1, 0, 5, 5)));
}

TEST(Box, IntersectionRectangle) {
  const Box a = MakeBox(0, 0, 4, 4);
  const Box b = MakeBox(2, 1, 6, 3);
  const Box isect = a.Intersection(b);
  EXPECT_EQ(isect.min, (Point{2, 1}));
  EXPECT_EQ(isect.max, (Point{4, 3}));
  EXPECT_TRUE(a.Intersection(MakeBox(5, 5, 6, 6)).IsEmpty());
}

TEST(ClassifyBoxes, AllSixCases) {
  const Box base = MakeBox(0, 0, 10, 10);
  EXPECT_EQ(ClassifyBoxes(base, MakeBox(20, 20, 30, 30)),
            BoxRelation::kDisjoint);
  EXPECT_EQ(ClassifyBoxes(base, base), BoxRelation::kEqual);
  EXPECT_EQ(ClassifyBoxes(MakeBox(2, 2, 8, 8), base), BoxRelation::kRInsideS);
  EXPECT_EQ(ClassifyBoxes(base, MakeBox(2, 2, 8, 8)), BoxRelation::kSInsideR);
  // Cross: r wide and flat, s tall and narrow.
  EXPECT_EQ(ClassifyBoxes(MakeBox(-5, 4, 15, 6), MakeBox(4, -5, 6, 15)),
            BoxRelation::kCross);
  EXPECT_EQ(ClassifyBoxes(MakeBox(4, -5, 6, 15), MakeBox(-5, 4, 15, 6)),
            BoxRelation::kCross);
  // Partial overlap.
  EXPECT_EQ(ClassifyBoxes(base, MakeBox(5, 5, 15, 15)), BoxRelation::kOverlap);
}

TEST(ClassifyBoxes, InsideWithSharedEdgeIsStillInside) {
  const Box outer = MakeBox(0, 0, 10, 10);
  const Box touching = MakeBox(0, 2, 5, 8);  // shares the left edge
  EXPECT_EQ(ClassifyBoxes(touching, outer), BoxRelation::kRInsideS);
}

TEST(ClassifyBoxes, DegenerateCrossFallsBackToOverlap) {
  // Equal extents in the piercing axis degrade the cross to overlap.
  const Box r = MakeBox(0, 4, 10, 6);
  const Box s = MakeBox(0, 0, 10, 10);  // same x-span: no strict pierce
  EXPECT_EQ(ClassifyBoxes(r, s), BoxRelation::kRInsideS);
  const Box s2 = MakeBox(2, 0, 10, 10);
  EXPECT_EQ(ClassifyBoxes(r, s2), BoxRelation::kOverlap);
}

}  // namespace
}  // namespace stj
