#include "src/geometry/clip.h"

#include <gtest/gtest.h>

#include "src/geometry/point_in_polygon.h"
#include "src/geometry/validate.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace stj {
namespace {

const Box kWindow = Box::Of(Point{0, 0}, Point{10, 10});

TEST(ClipRing, FullyInsideIsUntouched) {
  const Ring ring = test::Square(2, 2, 8, 8).Outer();
  const auto clipped = ClipRingToBox(ring, kWindow);
  ASSERT_TRUE(clipped.has_value());
  EXPECT_EQ(*clipped, ring);
}

TEST(ClipRing, FullyOutsideVanishes) {
  const Ring ring = test::Square(20, 20, 30, 30).Outer();
  EXPECT_FALSE(ClipRingToBox(ring, kWindow).has_value());
}

TEST(ClipRing, StraddlingSquareIsCut) {
  const Ring ring = test::Square(5, 5, 15, 15).Outer();
  const auto clipped = ClipRingToBox(ring, kWindow);
  ASSERT_TRUE(clipped.has_value());
  EXPECT_DOUBLE_EQ(clipped->Area(), 25.0);
  EXPECT_EQ(clipped->Bounds().max, (Point{10, 10}));
}

TEST(ClipRing, WindowInsidePolygonYieldsWindow) {
  const Ring ring = test::Square(-10, -10, 20, 20).Outer();
  const auto clipped = ClipRingToBox(ring, kWindow);
  ASSERT_TRUE(clipped.has_value());
  EXPECT_DOUBLE_EQ(clipped->Area(), 100.0);
}

TEST(ClipRing, TriangleCornerCase) {
  // Triangle poking into the window corner: its hypotenuse (x + y = 22)
  // never enters the window, so the clip is the full 2x2 corner square.
  const Ring ring =
      test::Triangle(Point{8, 8}, Point{14, 8}, Point{8, 14}).Outer();
  const auto clipped = ClipRingToBox(ring, kWindow);
  ASSERT_TRUE(clipped.has_value());
  EXPECT_DOUBLE_EQ(clipped->Area(), 4.0);
  for (const Point& p : clipped->Vertices()) {
    EXPECT_TRUE(kWindow.Contains(p));
  }
}

TEST(ClipRing, TouchingEdgeOnlyIsDropped) {
  // Polygon sharing only the window's right edge line.
  const Ring ring = test::Square(10, 2, 15, 8).Outer();
  const auto clipped = ClipRingToBox(ring, kWindow);
  EXPECT_FALSE(clipped.has_value());  // zero-area sliver removed
}

TEST(ClipPolygon, HolesAreClippedToo) {
  const Polygon donut = test::SquareWithHole(-5, -5, 15, 15, 6);  // hole [-1,11]^2
  const auto clipped = ClipPolygonToBox(donut, kWindow);
  ASSERT_TRUE(clipped.has_value());
  // The outer becomes the window; the hole becomes the window too... which
  // would annihilate it, but hole clipping keeps it as the window square,
  // so the area collapses to ~0 ring-area difference.
  EXPECT_NEAR(clipped->Area(), 0.0, 1e-9);
}

TEST(ClipPolygon, HoleOutsideWindowDisappears) {
  const Polygon donut = test::SquareWithHole(2, 2, 30, 30, 4);  // hole [12,20]^2
  const auto clipped = ClipPolygonToBox(donut, kWindow);
  ASSERT_TRUE(clipped.has_value());
  EXPECT_TRUE(clipped->Holes().empty());
  EXPECT_DOUBLE_EQ(clipped->Area(), 8.0 * 8.0);
}

TEST(ClipPolygonProperty, ResultStaysInWindowAndValid) {
  Rng rng(805);
  for (int i = 0; i < 80; ++i) {
    const Polygon blob = test::RandomBlob(
        &rng, Point{rng.Uniform(-5, 15), rng.Uniform(-5, 15)},
        rng.LogUniform(1.0, 8.0), static_cast<size_t>(rng.UniformInt(6, 100)));
    const auto clipped = ClipPolygonToBox(blob, kWindow);
    if (!clipped.has_value()) continue;
    EXPECT_TRUE(kWindow.Inflated(1e-9).Contains(clipped->Bounds())) << i;
    const ValidationResult res = ValidateRing(clipped->Outer());
    EXPECT_TRUE(res.valid) << i << ": " << res.reason;
    EXPECT_LE(clipped->Outer().Area(), blob.Outer().Area() + 1e-9) << i;
    // Sampled interior points of the clipped shape lie inside the original.
    for (int probe = 0; probe < 20; ++probe) {
      const Point p{rng.Uniform(kWindow.min.x, kWindow.max.x),
                    rng.Uniform(kWindow.min.y, kWindow.max.y)};
      if (LocateInRing(p, clipped->Outer()) == Location::kInterior) {
        EXPECT_NE(LocateInRing(p, blob.Outer()), Location::kExterior) << i;
      }
    }
  }
}

}  // namespace
}  // namespace stj
