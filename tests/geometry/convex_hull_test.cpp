#include "src/geometry/convex_hull.h"

#include <gtest/gtest.h>

#include "src/geometry/point_in_polygon.h"
#include "src/geometry/predicates.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace stj {
namespace {

bool IsConvexCCW(const Ring& ring) {
  const size_t n = ring.Size();
  if (n < 3) return false;
  for (size_t i = 0; i < n; ++i) {
    if (OrientSign(ring[i], ring[(i + 1) % n], ring[(i + 2) % n]) !=
        Sign::kPositive) {
      return false;
    }
  }
  return true;
}

TEST(ConvexHull, SquareIsItsOwnHull) {
  const Ring hull = ConvexHull(test::Square(0, 0, 2, 2));
  EXPECT_EQ(hull.Size(), 4u);
  EXPECT_TRUE(IsConvexCCW(hull));
}

TEST(ConvexHull, ConcaveShapeLosesTheNotch) {
  // C-shape: the hull is the bounding square.
  const Ring c_shape({Point{0, 0}, Point{4, 0}, Point{4, 1}, Point{1, 1},
                      Point{1, 3}, Point{4, 3}, Point{4, 4}, Point{0, 4}});
  const Ring hull = ConvexHull(Polygon{Ring(c_shape)});
  // The right-edge stub vertices are collinear with the corners and drop out.
  EXPECT_EQ(hull.Size(), 4u);
  EXPECT_TRUE(IsConvexCCW(hull));
  // Hull must contain every input vertex.
  for (const Point& p : c_shape.Vertices()) {
    EXPECT_NE(LocateInRing(p, hull), Location::kExterior);
  }
}

TEST(ConvexHull, CollinearPointsAreDropped) {
  const Ring strip({Point{0, 0}, Point{1, 0}, Point{2, 0}, Point{3, 0},
                    Point{3, 1}, Point{0, 1}});
  const Ring hull = ConvexHull(Polygon{Ring(strip)});
  EXPECT_EQ(hull.Size(), 4u);
}

TEST(ConvexHullProperty, HullContainsAllVerticesAndIsConvex) {
  Rng rng(501);
  for (int i = 0; i < 60; ++i) {
    const Polygon blob = test::RandomBlob(
        &rng, Point{rng.Uniform(0, 10), rng.Uniform(0, 10)},
        rng.LogUniform(0.5, 5.0), static_cast<size_t>(rng.UniformInt(4, 200)));
    const Ring hull = ConvexHull(blob);
    ASSERT_TRUE(IsConvexCCW(hull)) << i;
    for (const Point& p : blob.Outer().Vertices()) {
      ASSERT_NE(LocateInRing(p, hull), Location::kExterior) << i;
    }
    EXPECT_GE(hull.Area(), blob.Outer().Area() - 1e-9);
  }
}

TEST(ConvexPolygonsIntersect, BasicConfigurations) {
  const Ring a = ConvexHull(test::Square(0, 0, 2, 2));
  EXPECT_TRUE(ConvexPolygonsIntersect(a, ConvexHull(test::Square(1, 1, 3, 3))));
  EXPECT_FALSE(
      ConvexPolygonsIntersect(a, ConvexHull(test::Square(5, 5, 6, 6))));
  // Shared edge / shared corner count as intersecting.
  EXPECT_TRUE(ConvexPolygonsIntersect(a, ConvexHull(test::Square(2, 0, 4, 2))));
  EXPECT_TRUE(ConvexPolygonsIntersect(a, ConvexHull(test::Square(2, 2, 4, 4))));
  // Containment.
  EXPECT_TRUE(ConvexPolygonsIntersect(
      a, ConvexHull(test::Square(0.5, 0.5, 1.5, 1.5))));
  // MBRs overlap but hulls do not (diagonal separation).
  const Ring t1 =
      ConvexHull(test::Triangle(Point{0, 0}, Point{3, 0}, Point{0, 3}));
  const Ring t2 =
      ConvexHull(test::Triangle(Point{4, 4}, Point{1.2, 4}, Point{4, 1.2}));
  EXPECT_TRUE(t1.Bounds().Intersects(t2.Bounds()));
  EXPECT_FALSE(ConvexPolygonsIntersect(t1, t2));
}

// Brute-force ground truth: do two polygons share any point?
bool PolygonsShareAnyPoint(const Polygon& a, const Polygon& b) {
  bool hit = false;
  a.ForEachEdge([&](const Segment& ea) {
    b.ForEachEdge([&](const Segment& eb) {
      hit = hit || SegmentsIntersect(ea.a, ea.b, eb.a, eb.b);
    });
  });
  if (hit) return true;
  // Containment without boundary contact.
  return LocateInRing(a.Outer()[0], b.Outer()) == Location::kInterior ||
         LocateInRing(b.Outer()[0], a.Outer()) == Location::kInterior;
}

TEST(ConvexPolygonsIntersectProperty, SoundAgainstExactRelate) {
  // Hull-disjointness must imply polygon disjointness (the filter property).
  Rng rng(503);
  for (int i = 0; i < 120; ++i) {
    const Polygon a = test::RandomBlob(
        &rng, Point{rng.Uniform(0, 12), rng.Uniform(0, 12)},
        rng.LogUniform(0.5, 4.0), 24);
    const Polygon b = test::RandomBlob(
        &rng, Point{rng.Uniform(0, 12), rng.Uniform(0, 12)},
        rng.LogUniform(0.5, 4.0), 24);
    if (!ConvexPolygonsIntersect(ConvexHull(a), ConvexHull(b))) {
      // Exact geometries must be disjoint too.
      ASSERT_FALSE(PolygonsShareAnyPoint(a, b)) << i;
    }
  }
}

}  // namespace
}  // namespace stj
