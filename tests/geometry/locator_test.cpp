#include "src/geometry/locator.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"
#include "tests/test_support.h"

namespace stj {
namespace {

TEST(PolygonLocator, MatchesPlainLocateOnFixtures) {
  const Polygon poly = test::SquareWithHole(0, 0, 4, 4, 1);
  const PolygonLocator locator(poly);
  const Point probes[] = {{0.5, 0.5}, {2, 2},  {1, 2},   {0, 0},
                          {9, 9},     {4, 2},  {2, 3.5}, {3.99, 3.99},
                          {-1, 2},    {2, -1}};
  for (const Point& p : probes) {
    EXPECT_EQ(locator.Locate(p), Locate(p, poly)) << p.x << "," << p.y;
  }
}

TEST(PolygonLocator, PropertyAgreesWithPlainLocate) {
  Rng rng(41);
  for (int round = 0; round < 30; ++round) {
    const Polygon blob = test::RandomBlob(
        &rng, Point{rng.Uniform(0, 10), rng.Uniform(0, 10)},
        rng.LogUniform(0.5, 3.0), static_cast<size_t>(rng.UniformInt(8, 300)),
        /*hole_probability=*/0.3);
    const PolygonLocator locator(blob);
    const Box probe_area = blob.Bounds().Inflated(0.5);
    for (int i = 0; i < 200; ++i) {
      const Point p{rng.Uniform(probe_area.min.x, probe_area.max.x),
                    rng.Uniform(probe_area.min.y, probe_area.max.y)};
      ASSERT_EQ(locator.Locate(p), Locate(p, blob))
          << "round " << round << " probe " << i;
    }
    // Vertices are boundary points and stress the slab edges.
    for (size_t v = 0; v < blob.Outer().Size(); v += 7) {
      ASSERT_EQ(locator.Locate(blob.Outer()[v]), Location::kBoundary);
    }
  }
}

TEST(PolygonLocator, DegenerateFlatPolygon) {
  // Near-zero height exercises the single-slab fallback.
  const Polygon flat = test::Square(0, 0, 100, 1e-12);
  const PolygonLocator locator(flat);
  EXPECT_EQ(locator.Locate(Point{50, 1.0}), Location::kExterior);
  EXPECT_EQ(locator.Locate(Point{0, 0}), Location::kBoundary);
}

TEST(PolygonLocator, TriangleSmallestCase) {
  const Polygon tri = test::Triangle(Point{0, 0}, Point{4, 0}, Point{2, 3});
  const PolygonLocator locator(tri);
  EXPECT_EQ(locator.Locate(Point{2, 1}), Location::kInterior);
  EXPECT_EQ(locator.Locate(Point{2, 3}), Location::kBoundary);
  EXPECT_EQ(locator.Locate(Point{0, 3}), Location::kExterior);
}

}  // namespace
}  // namespace stj
