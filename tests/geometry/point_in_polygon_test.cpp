#include "src/geometry/point_in_polygon.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"
#include "tests/test_support.h"

namespace stj {
namespace {

TEST(LocateInRing, SquareInteriorBoundaryExterior) {
  const Ring square({Point{0, 0}, Point{4, 0}, Point{4, 4}, Point{0, 4}});
  EXPECT_EQ(LocateInRing(Point{2, 2}, square), Location::kInterior);
  EXPECT_EQ(LocateInRing(Point{0, 2}, square), Location::kBoundary);
  EXPECT_EQ(LocateInRing(Point{4, 4}, square), Location::kBoundary);  // vertex
  EXPECT_EQ(LocateInRing(Point{2, 0}, square), Location::kBoundary);
  EXPECT_EQ(LocateInRing(Point{5, 2}, square), Location::kExterior);
  EXPECT_EQ(LocateInRing(Point{-1, -1}, square), Location::kExterior);
}

TEST(LocateInRing, RayThroughVertexCountedOnce) {
  // A diamond: the +x ray from the left point passes exactly through the
  // right vertex level; the half-open rule must not double count.
  const Ring diamond({Point{2, 0}, Point{4, 2}, Point{2, 4}, Point{0, 2}});
  EXPECT_EQ(LocateInRing(Point{2, 2}, diamond), Location::kInterior);
  EXPECT_EQ(LocateInRing(Point{-1, 2}, diamond), Location::kExterior);
  EXPECT_EQ(LocateInRing(Point{1, 2}, diamond), Location::kInterior);
}

TEST(LocateInRing, HorizontalEdgeOnRayLevel) {
  // Polygon with a horizontal top edge; query points level with that edge.
  const Ring ring({Point{0, 0}, Point{4, 0}, Point{4, 2}, Point{2, 2},
                   Point{2, 4}, Point{0, 4}});
  EXPECT_EQ(LocateInRing(Point{1, 2}, ring), Location::kInterior);
  EXPECT_EQ(LocateInRing(Point{3, 2}, ring), Location::kBoundary);
  EXPECT_EQ(LocateInRing(Point{5, 2}, ring), Location::kExterior);
}

TEST(Locate, HoleSemantics) {
  const Polygon poly = test::SquareWithHole(0, 0, 4, 4, 1);
  EXPECT_EQ(Locate(Point{0.5, 0.5}, poly), Location::kInterior);
  EXPECT_EQ(Locate(Point{2, 2}, poly), Location::kExterior);   // inside hole
  EXPECT_EQ(Locate(Point{1, 2}, poly), Location::kBoundary);   // hole edge
  EXPECT_EQ(Locate(Point{0, 0}, poly), Location::kBoundary);   // outer vertex
  EXPECT_EQ(Locate(Point{9, 9}, poly), Location::kExterior);
}

TEST(Locate, ConcavePolygon) {
  // A "C" shape open to the right.
  const Ring c_shape({Point{0, 0}, Point{4, 0}, Point{4, 1}, Point{1, 1},
                      Point{1, 3}, Point{4, 3}, Point{4, 4}, Point{0, 4}});
  const Polygon poly{Ring(c_shape)};
  EXPECT_EQ(Locate(Point{0.5, 2}, poly), Location::kInterior);
  EXPECT_EQ(Locate(Point{2.5, 2}, poly), Location::kExterior);  // in the notch
  EXPECT_EQ(Locate(Point{2.5, 0.5}, poly), Location::kInterior);
}

TEST(Locate, RandomBlobCenterAndFarPoint) {
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    const Point center{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    const Polygon blob = test::RandomBlob(&rng, center, 2.0, 40);
    // The centre of a star-shaped polygon is interior.
    EXPECT_EQ(Locate(center, blob), Location::kInterior);
    EXPECT_EQ(Locate(Point{center.x + 100, center.y}, blob),
              Location::kExterior);
    // Every vertex is on the boundary.
    EXPECT_EQ(Locate(blob.Outer()[0], blob), Location::kBoundary);
  }
}

}  // namespace
}  // namespace stj
