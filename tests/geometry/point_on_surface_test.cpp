#include "src/geometry/point_on_surface.h"

#include <gtest/gtest.h>

#include "src/geometry/point_in_polygon.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace stj {
namespace {

TEST(PointOnSurface, UnitSquare) {
  Point p;
  ASSERT_TRUE(PointOnSurface(test::UnitSquare(), &p));
  EXPECT_EQ(Locate(p, test::UnitSquare()), Location::kInterior);
}

TEST(PointOnSurface, AvoidsCentralHole) {
  // The naive centroid of this polygon falls inside the hole.
  const Polygon poly = test::SquareWithHole(0, 0, 4, 4, 1.5);
  Point p;
  ASSERT_TRUE(PointOnSurface(poly, &p));
  EXPECT_EQ(Locate(p, poly), Location::kInterior);
}

TEST(PointOnSurface, ConcaveUShape) {
  // The bounding-box centre falls in the notch (exterior).
  const Ring u_shape({Point{0, 0}, Point{5, 0}, Point{5, 4}, Point{4, 4},
                      Point{4, 1}, Point{1, 1}, Point{1, 4}, Point{0, 4}});
  const Polygon poly{Ring(u_shape)};
  Point p;
  ASSERT_TRUE(PointOnSurface(poly, &p));
  EXPECT_EQ(Locate(p, poly), Location::kInterior);
}

TEST(PointOnSurface, ThinTriangle) {
  const Polygon sliver = test::Triangle(Point{0, 0}, Point{10, 1e-7},
                                        Point{20, 0});
  Point p;
  ASSERT_TRUE(PointOnSurface(sliver, &p));
  EXPECT_EQ(Locate(p, sliver), Location::kInterior);
}

TEST(PointOnSurface, FailsOnDegenerateInput) {
  Point p;
  EXPECT_FALSE(PointOnSurface(Polygon{}, &p));
}

TEST(PointOnSurfaceProperty, RandomBlobsAlwaysInterior) {
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    const Polygon blob = test::RandomBlob(
        &rng, Point{rng.Uniform(0, 10), rng.Uniform(0, 10)},
        rng.LogUniform(0.01, 5.0), static_cast<size_t>(rng.UniformInt(4, 200)),
        /*hole_probability=*/0.4);
    Point p;
    ASSERT_TRUE(PointOnSurface(blob, &p)) << "blob " << i;
    EXPECT_EQ(Locate(p, blob), Location::kInterior) << "blob " << i;
  }
}

}  // namespace
}  // namespace stj
