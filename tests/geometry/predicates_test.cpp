#include "src/geometry/predicates.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.h"

namespace stj {
namespace {

TEST(Orient2D, BasicOrientations) {
  const Point a{0, 0}, b{1, 0}, c{0, 1};
  EXPECT_EQ(OrientSign(a, b, c), Sign::kPositive);
  EXPECT_EQ(OrientSign(a, c, b), Sign::kNegative);
  EXPECT_EQ(OrientSign(a, b, Point{2, 0}), Sign::kZero);
}

TEST(Orient2D, AntisymmetryUnderSwap) {
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const Point a{rng.Uniform(-1e3, 1e3), rng.Uniform(-1e3, 1e3)};
    const Point b{rng.Uniform(-1e3, 1e3), rng.Uniform(-1e3, 1e3)};
    const Point c{rng.Uniform(-1e3, 1e3), rng.Uniform(-1e3, 1e3)};
    const int s1 = static_cast<int>(OrientSign(a, b, c));
    const int s2 = static_cast<int>(OrientSign(b, a, c));
    EXPECT_EQ(s1, -s2);
    // Cyclic permutation preserves orientation.
    EXPECT_EQ(s1, static_cast<int>(OrientSign(b, c, a)));
    EXPECT_EQ(s1, static_cast<int>(OrientSign(c, a, b)));
  }
}

TEST(Orient2D, ExactZeroOnDegenerateDoubles) {
  // (0.1, 0.1), (0.2, 0.2), (0.3, 0.3) are exactly collinear (x == y for
  // each point puts them on y = x regardless of decimal rounding).
  EXPECT_EQ(OrientSign(Point{0.1, 0.1}, Point{0.2, 0.2}, Point{0.3, 0.3}),
            Sign::kZero);

  // fl(0.1 + 0.2) is 4.4e-17 above 0.3, so (0.1+0.2, 0.3) sits just BELOW
  // the line y = x; the determinant sign must pick that up.
  const Point c{0.1 + 0.2, 0.3};
  EXPECT_EQ(OrientSign(Point{0, 0}, Point{1, 1}, c), Sign::kNegative);

  // Exactly representable collinear points must give exactly zero.
  const Point p{0.25, 0.5};
  const Point q{0.5, 1.0};
  const Point r{1.0, 2.0};
  EXPECT_EQ(OrientSign(p, q, r), Sign::kZero);
}

TEST(Orient2D, NearlyCollinearAdaptivePath) {
  // Points separated by one ulp from a collinear configuration exercise the
  // exact expansion fallback.
  const double x = 1.0;
  const Point a{x, x};
  const Point b{2 * x, 2 * x};
  Point c{3 * x, 3 * x};
  EXPECT_EQ(OrientSign(a, b, c), Sign::kZero);
  c.y = std::nextafter(c.y, 4.0);  // nudge up by one ulp
  EXPECT_EQ(OrientSign(a, b, c), Sign::kPositive);
  c.y = std::nextafter(std::nextafter(c.y, 0.0), 0.0);  // two ulps down
  EXPECT_EQ(OrientSign(a, b, c), Sign::kNegative);
}

TEST(Orient2D, LargeCoordinateCancellation) {
  // Large base coordinates with an exactly representable tiny offset
  // (2^20 + 2 + 2^-30 fits in 53 bits). Naive double evaluation cancels the
  // offset away; the adaptive predicate must not.
  const double big = 1048576.0;        // 2^20
  const double eps = 9.31322574615478515625e-10;  // 2^-30
  const Point a{big, big};
  const Point b{big + 1.0, big + 1.0};
  EXPECT_EQ(OrientSign(a, b, Point{big + 2.0, big + 2.0 + eps}),
            Sign::kPositive);
  EXPECT_EQ(OrientSign(a, b, Point{big + 2.0, big + 2.0 - eps}),
            Sign::kNegative);
  EXPECT_EQ(OrientSign(a, b, Point{big + 2.0, big + 2.0}), Sign::kZero);
}

TEST(Orient2D, AdaptiveStageResolvesNearCollinear) {
  // delta = 2^-48: 24 + delta is exactly representable, and the rounded
  // fast-path determinant is far below its error bound, forcing the
  // expansion stages to decide the (positive) sign.
  const double delta = 3.5527136788005009293556213378906e-15;  // 2^-48
  const Point a{0.5, 0.5};
  const Point b{12.0, 12.0};
  EXPECT_EQ(OrientSign(a, b, Point{24.0, 24.0 + delta}), Sign::kPositive);
  EXPECT_EQ(OrientSign(a, b, Point{24.0, 24.0 - delta}), Sign::kNegative);
  EXPECT_EQ(OrientSign(a, b, Point{24.0, 24.0}), Sign::kZero);
}

TEST(Orient2D, AgreesWithLongDoubleOnRandomInputs) {
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const Point a{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
    const Point b{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
    const Point c{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
    const long double det =
        (static_cast<long double>(a.x) - c.x) *
            (static_cast<long double>(b.y) - c.y) -
        (static_cast<long double>(a.y) - c.y) *
            (static_cast<long double>(b.x) - c.x);
    // Only check when the long double result is decisively non-zero.
    if (std::abs(static_cast<double>(det)) > 1e-6) {
      EXPECT_EQ(static_cast<int>(OrientSign(a, b, c)), det > 0 ? 1 : -1);
    }
  }
}

TEST(OnSegment, EndpointsAndMidpoints) {
  const Point a{0, 0}, b{4, 2};
  EXPECT_TRUE(OnSegment(a, a, b));
  EXPECT_TRUE(OnSegment(b, a, b));
  EXPECT_TRUE(OnSegment(Point{2, 1}, a, b));
  EXPECT_FALSE(OnSegment(Point{2, 1.0001}, a, b));
  EXPECT_FALSE(OnSegment(Point{6, 3}, a, b));   // collinear but beyond
  EXPECT_FALSE(OnSegment(Point{-2, -1}, a, b));  // collinear but before
}

TEST(OnSegment, VerticalAndHorizontal) {
  EXPECT_TRUE(OnSegment(Point{0, 0.5}, Point{0, 0}, Point{0, 1}));
  EXPECT_FALSE(OnSegment(Point{0.0001, 0.5}, Point{0, 0}, Point{0, 1}));
  EXPECT_TRUE(OnSegment(Point{0.5, 0}, Point{0, 0}, Point{1, 0}));
}

}  // namespace
}  // namespace stj
