#include <gtest/gtest.h>

#include "src/geometry/polygon.h"
#include "src/geometry/ring.h"
#include "tests/test_support.h"

namespace stj {
namespace {

TEST(Ring, DropsExplicitClosingVertex) {
  const Ring ring({Point{0, 0}, Point{1, 0}, Point{1, 1}, Point{0, 0}});
  EXPECT_EQ(ring.Size(), 3u);
}

TEST(Ring, SignedAreaAndWinding) {
  const Ring ccw({Point{0, 0}, Point{2, 0}, Point{2, 2}, Point{0, 2}});
  EXPECT_DOUBLE_EQ(ccw.SignedArea2(), 8.0);
  EXPECT_DOUBLE_EQ(ccw.Area(), 4.0);
  EXPECT_TRUE(ccw.IsCCW());

  Ring cw = ccw;
  cw.Reverse();
  EXPECT_DOUBLE_EQ(cw.SignedArea2(), -8.0);
  EXPECT_FALSE(cw.IsCCW());
}

TEST(Ring, EdgeWrapsAround) {
  const Ring ring({Point{0, 0}, Point{1, 0}, Point{0, 1}});
  const Segment last = ring.Edge(2);
  EXPECT_EQ(last.a, (Point{0, 1}));
  EXPECT_EQ(last.b, (Point{0, 0}));
}

TEST(Ring, BoundsTracksVertices) {
  const Ring ring({Point{-1, 2}, Point{5, -3}, Point{2, 7}});
  EXPECT_EQ(ring.Bounds().min, (Point{-1, -3}));
  EXPECT_EQ(ring.Bounds().max, (Point{5, 7}));
}

TEST(Polygon, NormalisesWindingOrders) {
  // Outer ring given clockwise, hole given counter-clockwise.
  Ring outer({Point{0, 0}, Point{0, 4}, Point{4, 4}, Point{4, 0}});
  Ring hole({Point{1, 1}, Point{3, 1}, Point{3, 3}, Point{1, 3}});
  ASSERT_FALSE(outer.IsCCW());
  ASSERT_TRUE(hole.IsCCW());
  const Polygon poly(outer, {hole});
  EXPECT_TRUE(poly.Outer().IsCCW());
  EXPECT_FALSE(poly.Holes()[0].IsCCW());
}

TEST(Polygon, AreaSubtractsHoles) {
  const Polygon poly = test::SquareWithHole(0, 0, 4, 4, 1);
  EXPECT_DOUBLE_EQ(poly.Area(), 16.0 - 4.0);
}

TEST(Polygon, VertexAndRingCounts) {
  const Polygon poly = test::SquareWithHole(0, 0, 4, 4, 1);
  EXPECT_EQ(poly.VertexCount(), 8u);
  EXPECT_EQ(poly.RingCount(), 2u);
}

TEST(Polygon, ForEachEdgeVisitsAllRings) {
  const Polygon poly = test::SquareWithHole(0, 0, 4, 4, 1);
  size_t edges = 0;
  poly.ForEachEdge([&](const Segment&) { ++edges; });
  EXPECT_EQ(edges, 8u);
}

}  // namespace
}  // namespace stj
