#include "src/geometry/segment.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace stj {
namespace {

TEST(SegmentsIntersect, ProperCrossing) {
  EXPECT_TRUE(SegmentsIntersect(Point{0, 0}, Point{2, 2}, Point{0, 2},
                                Point{2, 0}));
}

TEST(SegmentsIntersect, DisjointParallel) {
  EXPECT_FALSE(SegmentsIntersect(Point{0, 0}, Point{1, 0}, Point{0, 1},
                                 Point{1, 1}));
}

TEST(SegmentsIntersect, EndpointTouch) {
  EXPECT_TRUE(SegmentsIntersect(Point{0, 0}, Point{1, 1}, Point{1, 1},
                                Point{2, 0}));
  // T-junction: endpoint of one in the interior of the other.
  EXPECT_TRUE(SegmentsIntersect(Point{0, 0}, Point{2, 0}, Point{1, 0},
                                Point{1, 5}));
}

TEST(SegmentsIntersect, CollinearCases) {
  // Overlapping collinear.
  EXPECT_TRUE(SegmentsIntersect(Point{0, 0}, Point{2, 0}, Point{1, 0},
                                Point{3, 0}));
  // Touching collinear.
  EXPECT_TRUE(SegmentsIntersect(Point{0, 0}, Point{1, 0}, Point{1, 0},
                                Point{2, 0}));
  // Disjoint collinear.
  EXPECT_FALSE(SegmentsIntersect(Point{0, 0}, Point{1, 0}, Point{2, 0},
                                 Point{3, 0}));
}

TEST(IntersectSegments, ProperCrossingPoint) {
  const SegIntersection isect =
      IntersectSegments(Point{0, 0}, Point{2, 2}, Point{0, 2}, Point{2, 0});
  ASSERT_EQ(isect.kind, SegIntersectKind::kPoint);
  EXPECT_TRUE(isect.proper);
  EXPECT_DOUBLE_EQ(isect.p0.x, 1.0);
  EXPECT_DOUBLE_EQ(isect.p0.y, 1.0);
}

TEST(IntersectSegments, TouchIsNotProper) {
  const SegIntersection isect =
      IntersectSegments(Point{0, 0}, Point{2, 0}, Point{1, 0}, Point{1, 3});
  ASSERT_EQ(isect.kind, SegIntersectKind::kPoint);
  EXPECT_FALSE(isect.proper);
  EXPECT_EQ(isect.p0, (Point{1, 0}));
}

TEST(IntersectSegments, CollinearOverlapReturnsExactEndpoints) {
  const SegIntersection isect =
      IntersectSegments(Point{0, 0}, Point{3, 3}, Point{1, 1}, Point{5, 5});
  ASSERT_EQ(isect.kind, SegIntersectKind::kOverlap);
  EXPECT_EQ(isect.p0, (Point{1, 1}));
  EXPECT_EQ(isect.p1, (Point{3, 3}));
}

TEST(IntersectSegments, CollinearContainment) {
  const SegIntersection isect =
      IntersectSegments(Point{0, 0}, Point{10, 0}, Point{2, 0}, Point{5, 0});
  ASSERT_EQ(isect.kind, SegIntersectKind::kOverlap);
  EXPECT_EQ(isect.p0, (Point{2, 0}));
  EXPECT_EQ(isect.p1, (Point{5, 0}));
}

TEST(IntersectSegments, CollinearSinglePointTouch) {
  const SegIntersection isect =
      IntersectSegments(Point{0, 0}, Point{1, 1}, Point{1, 1}, Point{2, 2});
  ASSERT_EQ(isect.kind, SegIntersectKind::kPoint);
  EXPECT_EQ(isect.p0, (Point{1, 1}));
}

TEST(IntersectSegments, CollinearDisjoint) {
  const SegIntersection isect =
      IntersectSegments(Point{0, 0}, Point{1, 0}, Point{2, 0}, Point{3, 0});
  EXPECT_EQ(isect.kind, SegIntersectKind::kNone);
}

TEST(IntersectSegments, VerticalOverlapUsesYParam) {
  const SegIntersection isect =
      IntersectSegments(Point{0, 0}, Point{0, 4}, Point{0, 3}, Point{0, 9});
  ASSERT_EQ(isect.kind, SegIntersectKind::kOverlap);
  EXPECT_EQ(isect.p0, (Point{0, 3}));
  EXPECT_EQ(isect.p1, (Point{0, 4}));
}

TEST(IntersectSegments, RandomisedCrossingsLieOnBothSupportLines) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const Point p{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    const Point q{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    const Point u{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    const Point v{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    const SegIntersection isect = IntersectSegments(p, q, u, v);
    EXPECT_EQ(isect.kind != SegIntersectKind::kNone,
              SegmentsIntersect(p, q, u, v));
    if (isect.kind == SegIntersectKind::kPoint && isect.proper) {
      // The rounded crossing must be extremely close to both lines.
      const double d1 = Orient2D(p, q, isect.p0);
      const double d2 = Orient2D(u, v, isect.p0);
      EXPECT_LT(d1 * d1 + d2 * d2, 1e-12);
      // And within both bounding boxes (with a rounding allowance).
      EXPECT_GE(isect.p0.x, std::min({p.x, q.x}) - 1e-9);
      EXPECT_LE(isect.p0.x, std::max({p.x, q.x}) + 1e-9);
    }
  }
}

}  // namespace
}  // namespace stj
