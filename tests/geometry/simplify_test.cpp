#include "src/geometry/simplify.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/geometry/validate.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace stj {
namespace {

TEST(SimplifyRing, KeepsSquareCorners) {
  // A square with redundant collinear midpoints on every edge.
  const Ring ring({Point{0, 0}, Point{1, 0}, Point{2, 0}, Point{2, 1},
                   Point{2, 2}, Point{1, 2}, Point{0, 2}, Point{0, 1}});
  const Ring simplified = SimplifyRing(ring, 0.01);
  EXPECT_EQ(simplified.Size(), 4u);
  EXPECT_DOUBLE_EQ(simplified.Area(), 4.0);
}

TEST(SimplifyRing, ToleranceControlsDetail) {
  // A noisy circle: higher tolerance keeps fewer vertices.
  Rng rng(801);
  std::vector<Point> pts;
  const size_t n = 400;
  for (size_t i = 0; i < n; ++i) {
    const double theta = 2.0 * 3.14159265358979 * static_cast<double>(i) /
                         static_cast<double>(n);
    const double radius = 10.0 + rng.Uniform(-0.05, 0.05);
    pts.push_back(Point{radius * std::cos(theta), radius * std::sin(theta)});
  }
  const Ring ring(std::move(pts));
  const Ring fine = SimplifyRing(ring, 0.02);
  const Ring coarse = SimplifyRing(ring, 0.5);
  EXPECT_LT(coarse.Size(), fine.Size());
  EXPECT_LE(fine.Size(), ring.Size());
  EXPECT_GE(coarse.Size(), 3u);
  // Area is approximately preserved at moderate tolerance.
  EXPECT_NEAR(coarse.Area(), ring.Area(), ring.Area() * 0.05);
}

TEST(SimplifyRing, NeverBelowTriangle) {
  const Ring tiny({Point{0, 0}, Point{1e-6, 0}, Point{1e-6, 1e-6},
                   Point{0, 1e-6}});
  const Ring simplified = SimplifyRing(tiny, 100.0);
  EXPECT_GE(simplified.Size(), 3u);
}

TEST(SimplifyPolygon, DropsSubToleranceHoles) {
  Ring outer({Point{0, 0}, Point{10, 0}, Point{10, 10}, Point{0, 10}});
  Ring big_hole({Point{2, 2}, Point{5, 2}, Point{5, 5}, Point{2, 5}});
  Ring tiny_hole({Point{7, 7}, Point{7.01, 7}, Point{7.01, 7.01},
                  Point{7, 7.01}});
  const Polygon poly(outer, {big_hole, tiny_hole});
  const Polygon simplified = SimplifyPolygon(poly, 0.1);
  EXPECT_EQ(simplified.Holes().size(), 1u);
}

TEST(SimplifyPolygonProperty, BlobsStayValidAtModerateTolerance) {
  Rng rng(803);
  for (int i = 0; i < 40; ++i) {
    const Polygon blob = test::RandomBlob(
        &rng, Point{0, 0}, 10.0, static_cast<size_t>(rng.UniformInt(50, 500)),
        0.3);
    const Polygon simplified = SimplifyPolygon(blob, 0.05);
    EXPECT_LE(simplified.VertexCount(), blob.VertexCount());
    const ValidationResult res = ValidatePolygon(simplified);
    EXPECT_TRUE(res.valid) << i << ": " << res.reason;
    EXPECT_NEAR(simplified.Area(), blob.Area(), blob.Area() * 0.1) << i;
  }
}

}  // namespace
}  // namespace stj
