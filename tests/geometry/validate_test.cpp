#include "src/geometry/validate.h"

#include <gtest/gtest.h>

#include "src/datasets/tessellation.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace stj {
namespace {

TEST(ValidateRing, AcceptsSimpleShapes) {
  EXPECT_TRUE(ValidateRing(test::UnitSquare().Outer()).valid);
  EXPECT_TRUE(
      ValidateRing(test::Triangle(Point{0, 0}, Point{1, 0}, Point{0, 1})
                       .Outer())
          .valid);
}

TEST(ValidateRing, RejectsTooFewVertices) {
  const ValidationResult res = ValidateRing(Ring({Point{0, 0}, Point{1, 1}}));
  EXPECT_FALSE(res.valid);
  EXPECT_NE(res.reason.find("fewer than 3"), std::string::npos);
}

TEST(ValidateRing, RejectsRepeatedConsecutiveVertices) {
  const ValidationResult res = ValidateRing(
      Ring({Point{0, 0}, Point{1, 0}, Point{1, 0}, Point{0, 1}}));
  EXPECT_FALSE(res.valid);
  EXPECT_NE(res.reason.find("repeated"), std::string::npos);
}

TEST(ValidateRing, RejectsBowtie) {
  // The symmetric bowtie also has zero signed area, so either rejection
  // reason is legitimate.
  EXPECT_FALSE(ValidateRing(Ring({Point{0, 0}, Point{2, 2}, Point{2, 0},
                                  Point{0, 2}}))
                   .valid);
  // An asymmetric bowtie with non-zero area must be caught by the
  // self-intersection check specifically.
  const ValidationResult res = ValidateRing(
      Ring({Point{0, 0}, Point{4, 4}, Point{4, 0}, Point{0, 2}}));
  EXPECT_FALSE(res.valid);
  EXPECT_NE(res.reason.find("self-intersection"), std::string::npos);
}

TEST(ValidateRing, RejectsZeroArea) {
  const ValidationResult res = ValidateRing(
      Ring({Point{0, 0}, Point{1, 1}, Point{2, 2}}));
  EXPECT_FALSE(res.valid);
}

TEST(ValidatePolygon, AcceptsPolygonWithHole) {
  EXPECT_TRUE(ValidatePolygon(test::SquareWithHole(0, 0, 4, 4, 1)).valid);
}

TEST(ValidatePolygon, RejectsHoleOutsideOuter) {
  Ring outer({Point{0, 0}, Point{4, 0}, Point{4, 4}, Point{0, 4}});
  Ring hole({Point{10, 10}, Point{11, 10}, Point{11, 11}, Point{10, 11}});
  const ValidationResult res = ValidatePolygon(Polygon(outer, {hole}));
  EXPECT_FALSE(res.valid);
  EXPECT_NE(res.reason.find("outside"), std::string::npos);
}

TEST(ValidatePolygon, RejectsHoleCrossingOuter) {
  Ring outer({Point{0, 0}, Point{4, 0}, Point{4, 4}, Point{0, 4}});
  Ring hole({Point{2, 2}, Point{6, 2}, Point{6, 3}, Point{2, 3}});
  EXPECT_FALSE(ValidatePolygon(Polygon(outer, {hole})).valid);
}

TEST(ValidatePolygonProperty, GeneratedBlobsAreValid) {
  Rng rng(77);
  for (int i = 0; i < 100; ++i) {
    const Polygon blob = test::RandomBlob(
        &rng, Point{rng.Uniform(0, 100), rng.Uniform(0, 100)},
        rng.LogUniform(0.01, 3.0), static_cast<size_t>(rng.UniformInt(4, 400)),
        /*hole_probability=*/0.5);
    const ValidationResult res = ValidatePolygon(blob);
    EXPECT_TRUE(res.valid) << "blob " << i << ": " << res.reason;
  }
}

TEST(ValidatePolygonProperty, TessellationCellsAreValid) {
  Rng rng(78);
  TessellationParams params;
  params.cols = 6;
  params.rows = 6;
  params.jitter = 0.35;
  params.edge_points = 8;
  params.edge_wiggle = 0.1;
  const std::vector<Polygon> cells = MakeTessellation(&rng, params);
  ASSERT_EQ(cells.size(), 36u);
  for (size_t i = 0; i < cells.size(); ++i) {
    const ValidationResult res = ValidatePolygon(cells[i]);
    EXPECT_TRUE(res.valid) << "cell " << i << ": " << res.reason;
  }
}

}  // namespace
}  // namespace stj
