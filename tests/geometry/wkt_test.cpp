#include "src/geometry/wkt.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"
#include "tests/test_support.h"

namespace stj {
namespace {

TEST(Wkt, PointRoundTrip) {
  const Point p{1.5, -2.25};
  const auto parsed = ParseWktPoint(ToWkt(p));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, p);
}

TEST(Wkt, PolygonRoundTripPreservesEverything) {
  const Polygon poly = test::SquareWithHole(0, 0, 4, 4, 1);
  const auto parsed = ParseWktPolygon(ToWkt(poly));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Outer(), poly.Outer());
  ASSERT_EQ(parsed->Holes().size(), 1u);
  EXPECT_EQ(parsed->Holes()[0], poly.Holes()[0]);
}

TEST(Wkt, RoundTripIsExactForRandomCoordinates) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Polygon blob =
        test::RandomBlob(&rng, Point{rng.Uniform(-100, 100),
                                     rng.Uniform(-100, 100)},
                         rng.LogUniform(0.001, 100.0), 24);
    const auto parsed = ParseWktPolygon(ToWkt(blob));
    ASSERT_TRUE(parsed.has_value());
    // %.17g printing is lossless for doubles.
    EXPECT_EQ(parsed->Outer(), blob.Outer());
  }
}

TEST(Wkt, ParsesUnclosedAndClosedRings) {
  const auto closed =
      ParseWktPolygon("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))");
  const auto unclosed = ParseWktPolygon("POLYGON ((0 0, 1 0, 1 1, 0 1))");
  ASSERT_TRUE(closed.has_value());
  ASSERT_TRUE(unclosed.has_value());
  EXPECT_EQ(closed->Outer(), unclosed->Outer());
  EXPECT_EQ(closed->Outer().Size(), 4u);
}

TEST(Wkt, CaseInsensitiveKeywordAndWhitespace) {
  EXPECT_TRUE(ParseWktPolygon("polygon((0 0,1 0,1 1))").has_value());
  EXPECT_TRUE(ParseWktPolygon("  PoLyGoN ( ( 0 0 , 1 0 , 1 1 ) ) ").has_value());
  EXPECT_TRUE(ParseWktPoint("point(3 4)").has_value());
}

TEST(Wkt, PolygonEmpty) {
  const auto empty = ParseWktPolygon("POLYGON EMPTY");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->Empty());
  EXPECT_EQ(ToWkt(Polygon{}), "POLYGON EMPTY");
}

TEST(Wkt, RejectsMalformedInput) {
  EXPECT_FALSE(ParseWktPolygon("POLYGON ((0 0, 1 0, 1 1)").has_value());
  EXPECT_FALSE(ParseWktPolygon("POLYGON (0 0, 1 0, 1 1)").has_value());
  EXPECT_FALSE(ParseWktPolygon("POLYGON ((0 zero, 1 0, 1 1))").has_value());
  EXPECT_FALSE(ParseWktPolygon("LINESTRING (0 0, 1 1)").has_value());
  EXPECT_FALSE(ParseWktPolygon("POLYGON ((0 0, 1 0, 1 1)) extra").has_value());
  EXPECT_FALSE(ParseWktPoint("POINT ()").has_value());
}

}  // namespace
}  // namespace stj
