// End-to-end: build a scenario, run all four pipelines over every candidate
// pair, and check that (a) all methods agree pair-by-pair, (b) the P+C
// filter statistics dominate the baselines, (c) relate_p agrees with find
// relation semantics on a sample.

#include <gtest/gtest.h>

#include <map>

#include "src/datasets/scenarios.h"
#include "src/datasets/workload.h"
#include "src/topology/pipeline.h"

namespace stj {
namespace {

using de9im::Relation;

class EndToEndTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EndToEndTest, AllMethodsAgreeOnScenario) {
  ScenarioOptions options;
  options.scale = 0.02;
  options.grid_order = 10;
  const ScenarioData scenario = BuildScenario(GetParam(), options);
  ASSERT_FALSE(scenario.candidates.empty());

  Pipeline st2(Method::kST2, scenario.RView(), scenario.SView());
  Pipeline op2(Method::kOP2, scenario.RView(), scenario.SView());
  Pipeline april(Method::kApril, scenario.RView(), scenario.SView());
  Pipeline pc(Method::kPC, scenario.RView(), scenario.SView());

  std::map<Relation, size_t> histogram;
  for (const CandidatePair& pair : scenario.candidates) {
    const Relation expected = st2.FindRelation(pair.r_idx, pair.s_idx);
    ++histogram[expected];
    ASSERT_EQ(op2.FindRelation(pair.r_idx, pair.s_idx), expected)
        << "OP2 disagrees on (" << pair.r_idx << "," << pair.s_idx << ")";
    ASSERT_EQ(april.FindRelation(pair.r_idx, pair.s_idx), expected)
        << "APRIL disagrees on (" << pair.r_idx << "," << pair.s_idx << ")";
    ASSERT_EQ(pc.FindRelation(pair.r_idx, pair.s_idx), expected)
        << "P+C disagrees on (" << pair.r_idx << "," << pair.s_idx << ")";
  }

  // Effectiveness ordering (Fig. 7(b)): P+C refines no more than APRIL,
  // which refines no more than OP2/ST2.
  EXPECT_LE(pc.Stats().refined, april.Stats().refined);
  EXPECT_LE(april.Stats().refined, op2.Stats().refined);
  EXPECT_LE(op2.Stats().refined, st2.Stats().refined);
  EXPECT_EQ(pc.Stats().pairs, scenario.candidates.size());
}

INSTANTIATE_TEST_SUITE_P(Scenarios, EndToEndTest,
                         ::testing::Values("TL-TW", "TC-TZ", "OLE-OPE",
                                           "OBN-OPN"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(EndToEndRelate, PredicateJoinMatchesFindRelationDerivation) {
  ScenarioOptions options;
  options.scale = 0.1;
  options.grid_order = 10;
  const ScenarioData scenario = BuildScenario("OLE-OPE", options);
  Pipeline pc(Method::kPC, scenario.RView(), scenario.SView());
  Pipeline verifier(Method::kST2, scenario.RView(), scenario.SView());

  const Relation predicates[] = {Relation::kEquals, Relation::kMeets,
                                 Relation::kInside, Relation::kIntersects};
  size_t checked = 0;
  for (size_t i = 0; i < scenario.candidates.size() && checked < 500;
       i += 3, ++checked) {
    const CandidatePair& pair = scenario.candidates[i];
    for (const Relation p : predicates) {
      const bool via_pc = pc.Relate(pair.r_idx, pair.s_idx, p);
      const bool via_st2 = verifier.Relate(pair.r_idx, pair.s_idx, p);
      ASSERT_EQ(via_pc, via_st2)
          << "predicate " << ToString(p) << " on (" << pair.r_idx << ","
          << pair.s_idx << ")";
    }
  }
  EXPECT_GT(checked, 100u);
}

TEST(EndToEndScalability, HighComplexityRefinesLessWithPC) {
  // Fig. 8(a)'s shape: the P+C undetermined rate at the top complexity level
  // is lower than at the bottom level.
  ScenarioOptions options;
  options.scale = 0.12;
  options.grid_order = 11;
  const ScenarioData scenario = BuildScenario("OLE-OPE", options);
  const ComplexityLevels levels = GroupByComplexity(scenario, 5);
  ASSERT_EQ(levels.pairs.size(), 5u);
  ASSERT_GT(levels.pairs.front().size(), 20u);

  auto undetermined_rate = [&](const std::vector<CandidatePair>& pairs) {
    Pipeline pc(Method::kPC, scenario.RView(), scenario.SView());
    for (const CandidatePair& pair : pairs) {
      pc.FindRelation(pair.r_idx, pair.s_idx);
    }
    return pc.Stats().UndeterminedPercent();
  };
  const double low = undetermined_rate(levels.pairs.front());
  const double high = undetermined_rate(levels.pairs.back());
  EXPECT_LT(high, low) << "filter effectiveness should grow with complexity";
}

}  // namespace
}  // namespace stj
