// Degeneracy stress: polygons whose coordinates live on a small integer
// lattice collide constantly — shared edges, shared vertices, collinear
// overlaps, equal polygons. Every exact-arithmetic path in the engine and
// every filter soundness guarantee must hold under this torture mix.

#include <gtest/gtest.h>

#include <vector>

#include "src/datasets/scenarios.h"
#include "src/de9im/relate_engine.h"
#include "src/topology/find_relation.h"
#include "src/topology/pipeline.h"
#include "src/topology/relate_predicate.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace stj {
namespace {

using de9im::Relation;

// A random axis-aligned rectangle with corners on the 12x12 integer lattice.
Polygon LatticeRect(Rng* rng) {
  const int64_t x0 = rng->UniformInt(0, 10);
  const int64_t y0 = rng->UniformInt(0, 10);
  const int64_t x1 = rng->UniformInt(x0 + 1, 12);
  const int64_t y1 = rng->UniformInt(y0 + 1, 12);
  return test::Square(static_cast<double>(x0), static_cast<double>(y0),
                      static_cast<double>(x1), static_cast<double>(y1));
}

// A random lattice L-shape (rectangle minus a corner quadrant).
Polygon LatticeL(Rng* rng) {
  const int64_t x0 = rng->UniformInt(0, 8);
  const int64_t y0 = rng->UniformInt(0, 8);
  const int64_t x1 = rng->UniformInt(x0 + 2, 12);
  const int64_t y1 = rng->UniformInt(y0 + 2, 12);
  const int64_t nx = rng->UniformInt(x0 + 1, x1 - 1);
  const int64_t ny = rng->UniformInt(y0 + 1, y1 - 1);
  const auto d = [](int64_t v) { return static_cast<double>(v); };
  return Polygon(Ring({Point{d(x0), d(y0)}, Point{d(x1), d(y0)},
                       Point{d(x1), d(ny)}, Point{d(nx), d(ny)},
                       Point{d(nx), d(y1)}, Point{d(x0), d(y1)}}));
}

// A lattice rectangle with a lattice rectangular hole.
Polygon LatticeDonut(Rng* rng) {
  const int64_t x0 = rng->UniformInt(0, 6);
  const int64_t y0 = rng->UniformInt(0, 6);
  const int64_t x1 = rng->UniformInt(x0 + 4, 12);
  const int64_t y1 = rng->UniformInt(y0 + 4, 12);
  const int64_t hx0 = x0 + 1;
  const int64_t hy0 = y0 + 1;
  const int64_t hx1 = rng->UniformInt(hx0 + 1, x1 - 1);
  const int64_t hy1 = rng->UniformInt(hy0 + 1, y1 - 1);
  const auto d = [](int64_t v) { return static_cast<double>(v); };
  Ring hole({Point{d(hx0), d(hy0)}, Point{d(hx1), d(hy0)},
             Point{d(hx1), d(hy1)}, Point{d(hx0), d(hy1)}});
  return Polygon(Ring({Point{d(x0), d(y0)}, Point{d(x1), d(y0)},
                       Point{d(x1), d(y1)}, Point{d(x0), d(y1)}}),
                 {std::move(hole)});
}

Polygon RandomLatticeShape(Rng* rng) {
  switch (rng->NextBounded(3)) {
    case 0: return LatticeRect(rng);
    case 1: return LatticeL(rng);
    default: return LatticeDonut(rng);
  }
}

TEST(LatticeStress, EngineSymmetryAndFilterSoundness) {
  Rng rng(701);
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{12, 12}), 8);
  const AprilBuilder builder(&grid);
  for (int round = 0; round < 400; ++round) {
    const Polygon a = RandomLatticeShape(&rng);
    const Polygon b =
        rng.Bernoulli(0.15) ? a : RandomLatticeShape(&rng);  // force equals

    // Engine self-consistency.
    const de9im::Matrix ab = de9im::RelateMatrix(a, b);
    const de9im::Matrix ba = de9im::RelateMatrix(b, a);
    ASSERT_EQ(ab.ToString(), ba.Transposed().ToString()) << round;
    const Relation exact = de9im::MostSpecificRelation(ab);

    // Filter soundness under heavy degeneracy.
    const AprilApproximation aa = builder.Build(a);
    const AprilApproximation bb = builder.Build(b);
    const FilterDecision d =
        FindRelationFilter(a.Bounds(), aa, b.Bounds(), bb);
    if (d.definite) {
      ASSERT_EQ(d.relation, exact)
          << round << ": filter said " << ToString(d.relation)
          << ", matrix " << ab.ToString();
    } else {
      ASSERT_TRUE(d.candidates.Contains(exact))
          << round << ": " << ToString(exact) << " missing, matrix "
          << ab.ToString();
    }

    // relate_p soundness for every predicate.
    for (int p = 0; p < de9im::kNumRelations; ++p) {
      const Relation predicate = static_cast<Relation>(p);
      const RelateAnswer answer = RelatePredicateFilter(
          predicate, a.Bounds(), aa, b.Bounds(), bb);
      const bool holds = RelationHolds(predicate, ab);
      if (answer == RelateAnswer::kYes) {
        ASSERT_TRUE(holds) << round;
      }
      if (answer == RelateAnswer::kNo) {
        ASSERT_FALSE(holds) << round;
      }
    }
  }
}

TEST(LatticeStress, PipelinesAgreeOnLatticeSoup) {
  Rng rng(703);
  std::vector<SpatialObject> r_objects;
  std::vector<SpatialObject> s_objects;
  for (uint32_t i = 0; i < 40; ++i) {
    r_objects.push_back(SpatialObject{i, RandomLatticeShape(&rng)});
    s_objects.push_back(SpatialObject{i, RandomLatticeShape(&rng)});
  }
  // Seed some duplicates across the sides.
  for (uint32_t i = 0; i < 6; ++i) {
    s_objects[i].geometry = r_objects[i].geometry;
  }
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{12, 12}), 8);
  const AprilBuilder builder(&grid);
  std::vector<AprilApproximation> r_april;
  std::vector<AprilApproximation> s_april;
  for (const auto& o : r_objects) r_april.push_back(builder.Build(o.geometry));
  for (const auto& o : s_objects) s_april.push_back(builder.Build(o.geometry));
  const DatasetView r_view{&r_objects, &r_april};
  const DatasetView s_view{&s_objects, &s_april};

  Pipeline st2(Method::kST2, r_view, s_view);
  Pipeline op2(Method::kOP2, r_view, s_view);
  Pipeline april(Method::kApril, r_view, s_view);
  Pipeline pc(Method::kPC, r_view, s_view);
  for (uint32_t i = 0; i < r_objects.size(); ++i) {
    for (uint32_t j = 0; j < s_objects.size(); ++j) {
      const Relation expected = st2.FindRelation(i, j);
      ASSERT_EQ(op2.FindRelation(i, j), expected) << i << "," << j;
      ASSERT_EQ(april.FindRelation(i, j), expected) << i << "," << j;
      ASSERT_EQ(pc.FindRelation(i, j), expected) << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace stj
