// Integration: Douglas-Peucker preprocessing vs the topology pipeline. GIS
// pipelines often simplify geometry before joins; this suite documents what
// that does (and does not) preserve, and checks the pipeline keeps working
// on the reduced-complexity datasets.

#include <gtest/gtest.h>

#include "src/datasets/scenarios.h"
#include "src/de9im/relate_engine.h"
#include "src/geometry/simplify.h"
#include "src/topology/pipeline.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace stj {
namespace {

using de9im::Relation;

TEST(SimplifyTopology, DeepContainmentSurvivesSimplification) {
  Rng rng(901);
  for (int i = 0; i < 25; ++i) {
    const Point c{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    BlobParams params;
    params.center = c;
    params.mean_radius = 10.0;
    params.vertices = 300;
    params.irregularity = 0.35;
    const Polygon outer = MakeBlob(&rng, params);
    const Polygon inner = ScaleAbout(outer, c, 0.3);
    ASSERT_EQ(de9im::FindRelationExact(inner, outer), Relation::kInside);
    // Simplify with a tolerance far below the gap between the shapes: the
    // relation must survive.
    const Polygon outer_simple = SimplifyPolygon(outer, 0.05);
    const Polygon inner_simple = SimplifyPolygon(inner, 0.05);
    ASSERT_LT(outer_simple.VertexCount(), outer.VertexCount());
    EXPECT_EQ(de9im::FindRelationExact(inner_simple, outer_simple),
              Relation::kInside)
        << i;
  }
}

TEST(SimplifyTopology, DisjointnessSurvivesSimplification) {
  Rng rng(903);
  for (int i = 0; i < 25; ++i) {
    const Polygon a = test::RandomBlob(&rng, Point{0, 0}, 5.0, 200);
    const Polygon b = test::RandomBlob(&rng, Point{30, 0}, 5.0, 200);
    const Polygon a_simple = SimplifyPolygon(a, 0.1);
    const Polygon b_simple = SimplifyPolygon(b, 0.1);
    EXPECT_EQ(de9im::FindRelationExact(a_simple, b_simple),
              Relation::kDisjoint)
        << i;
  }
}

TEST(SimplifyTopology, PipelinesAgreeOnSimplifiedDataset) {
  // Simplify a whole scenario's polygons and re-run the agreement check:
  // the filters must stay sound on the changed complexity profile.
  ScenarioOptions options;
  options.scale = 0.02;
  options.grid_order = 10;
  ScenarioData scenario = BuildScenario("OLE-OPE", options);
  for (SpatialObject& o : scenario.r.objects) {
    o.geometry = SimplifyPolygon(o.geometry, 0.01);
  }
  for (SpatialObject& o : scenario.s.objects) {
    o.geometry = SimplifyPolygon(o.geometry, 0.01);
  }
  // Rebuild approximations and candidates for the new geometry.
  const RasterGrid grid(scenario.dataspace, options.grid_order);
  scenario.r_april = BuildAprilApproximations(scenario.r, grid);
  scenario.s_april = BuildAprilApproximations(scenario.s, grid);
  scenario.candidates = MbrJoin::Join(scenario.r.Mbrs(), scenario.s.Mbrs());
  ASSERT_FALSE(scenario.candidates.empty());

  Pipeline st2(Method::kST2, scenario.RView(), scenario.SView());
  Pipeline pc(Method::kPC, scenario.RView(), scenario.SView());
  Pipeline op2(Method::kOP2, scenario.RView(), scenario.SView());
  Pipeline april(Method::kApril, scenario.RView(), scenario.SView());
  for (const CandidatePair& pair : scenario.candidates) {
    const Relation expected = st2.FindRelation(pair.r_idx, pair.s_idx);
    ASSERT_EQ(pc.FindRelation(pair.r_idx, pair.s_idx), expected);
    ASSERT_EQ(op2.FindRelation(pair.r_idx, pair.s_idx), expected);
    ASSERT_EQ(april.FindRelation(pair.r_idx, pair.s_idx), expected);
  }
}

TEST(SimplifyTopology, RelatePathAgreesAcrossMethodsOnPredicates) {
  // Exercise the non-P+C Relate code paths (OP2/APRIL fall back to
  // refinement) against P+C's predicate filters.
  ScenarioOptions options;
  options.scale = 0.08;
  options.grid_order = 10;
  const ScenarioData scenario = BuildScenario("TL-TW", options);
  Pipeline op2(Method::kOP2, scenario.RView(), scenario.SView());
  Pipeline april(Method::kApril, scenario.RView(), scenario.SView());
  Pipeline pc(Method::kPC, scenario.RView(), scenario.SView());
  size_t checked = 0;
  for (size_t i = 0; i < scenario.candidates.size() && checked < 150;
       i += 2, ++checked) {
    const CandidatePair& pair = scenario.candidates[i];
    for (const Relation p : {Relation::kIntersects, Relation::kMeets,
                             Relation::kDisjoint, Relation::kCoveredBy}) {
      const bool expected = pc.Relate(pair.r_idx, pair.s_idx, p);
      ASSERT_EQ(op2.Relate(pair.r_idx, pair.s_idx, p), expected);
      ASSERT_EQ(april.Relate(pair.r_idx, pair.s_idx, p), expected);
    }
  }
  EXPECT_GT(checked, 50u);
}

}  // namespace
}  // namespace stj
