#include "src/interval/interval_algebra.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/util/rng.h"

namespace stj {
namespace {

// Reference implementations over explicit cell sets.
std::set<CellId> CellsOf(const IntervalList& list) {
  std::set<CellId> cells;
  for (size_t i = 0; i < list.Size(); ++i) {
    for (CellId c = list[i].begin; c < list[i].end; ++c) cells.insert(c);
  }
  return cells;
}

bool RefOverlap(const IntervalList& x, const IntervalList& y) {
  const auto a = CellsOf(x);
  for (const CellId c : CellsOf(y)) {
    if (a.count(c) != 0) return true;
  }
  return false;
}

bool RefInside(const IntervalList& x, const IntervalList& y) {
  const auto b = CellsOf(y);
  for (const CellId c : CellsOf(x)) {
    if (b.count(c) == 0) return false;
  }
  return true;
}

uint64_t RefCommon(const IntervalList& x, const IntervalList& y) {
  const auto a = CellsOf(x);
  uint64_t n = 0;
  for (const CellId c : CellsOf(y)) n += a.count(c);
  return n;
}

IntervalList RandomList(Rng* rng, CellId universe, double density) {
  std::vector<CellId> cells;
  for (CellId c = 0; c < universe; ++c) {
    if (rng->Bernoulli(density)) cells.push_back(c);
  }
  return IntervalList::FromCells(std::move(cells));
}

TEST(IntervalAlgebra, OverlapBasics) {
  const IntervalList a = IntervalList::FromCells({1, 2, 3});
  const IntervalList b = IntervalList::FromCells({3, 4});
  const IntervalList c = IntervalList::FromCells({4, 5});
  EXPECT_TRUE(ListsOverlap(a, b));
  EXPECT_TRUE(ListsOverlap(b, a));
  EXPECT_FALSE(ListsOverlap(a, c));
  EXPECT_FALSE(ListsOverlap(a, IntervalList()));
  EXPECT_FALSE(ListsOverlap(IntervalList(), IntervalList()));
}

TEST(IntervalAlgebra, HalfOpenBoundariesDoNotOverlap) {
  // [0,5) and [5,9) share no cell.
  IntervalList a;
  a.Append(0, 5);
  IntervalList b;
  b.Append(5, 9);
  EXPECT_FALSE(ListsOverlap(a, b));
}

TEST(IntervalAlgebra, MatchIsExactEquality) {
  const IntervalList a = IntervalList::FromCells({1, 2, 3, 7});
  const IntervalList b = IntervalList::FromCells({1, 2, 3, 7});
  const IntervalList c = IntervalList::FromCells({1, 2, 3});
  EXPECT_TRUE(ListsMatch(a, b));
  EXPECT_FALSE(ListsMatch(a, c));
  EXPECT_TRUE(ListsMatch(IntervalList(), IntervalList()));
}

TEST(IntervalAlgebra, InsideBasics) {
  const IntervalList big = IntervalList::FromCells({1, 2, 3, 4, 5, 8, 9});
  const IntervalList small = IntervalList::FromCells({2, 3, 8});
  EXPECT_TRUE(ListInside(small, big));
  EXPECT_FALSE(ListInside(big, small));
  EXPECT_TRUE(ListContains(big, small));
  // A list is inside itself; the empty list is inside anything.
  EXPECT_TRUE(ListInside(big, big));
  EXPECT_TRUE(ListInside(IntervalList(), big));
  EXPECT_FALSE(ListInside(big, IntervalList()));
}

TEST(IntervalAlgebra, InsideRequiresSingleCoveringInterval) {
  // x = [0,10) is NOT inside y = [0,5) ∪ [6,12): cell 5 is missing.
  IntervalList x;
  x.Append(0, 10);
  IntervalList y;
  y.Append(0, 5);
  y.Append(6, 12);
  EXPECT_FALSE(ListInside(x, y));
}

TEST(IntervalAlgebra, CommonCellsCount) {
  IntervalList a;
  a.Append(0, 10);
  IntervalList b;
  b.Append(5, 7);
  b.Append(9, 20);
  EXPECT_EQ(ListsCommonCells(a, b), 2u + 1u);
  EXPECT_EQ(ListsCommonCells(b, a), 3u);
  EXPECT_EQ(ListsCommonCells(a, IntervalList()), 0u);
}

TEST(IntervalAlgebraProperty, AgreesWithSetModel) {
  Rng rng(66);
  for (int round = 0; round < 300; ++round) {
    const IntervalList x = RandomList(&rng, 80, rng.Uniform(0.05, 0.7));
    const IntervalList y = RandomList(&rng, 80, rng.Uniform(0.05, 0.7));
    ASSERT_EQ(ListsOverlap(x, y), RefOverlap(x, y)) << round;
    ASSERT_EQ(ListsOverlap(y, x), RefOverlap(x, y)) << round;
    ASSERT_EQ(ListInside(x, y), RefInside(x, y)) << round;
    ASSERT_EQ(ListContains(x, y), RefInside(y, x)) << round;
    ASSERT_EQ(ListsCommonCells(x, y), RefCommon(x, y)) << round;
    ASSERT_EQ(ListsMatch(x, y), CellsOf(x) == CellsOf(y)) << round;
  }
}

TEST(IntervalAlgebraProperty, InsideImpliesOverlapUnlessEmpty) {
  Rng rng(67);
  for (int round = 0; round < 100; ++round) {
    const IntervalList x = RandomList(&rng, 60, 0.3);
    const IntervalList y = RandomList(&rng, 60, 0.5);
    if (ListInside(x, y) && !x.Empty()) {
      EXPECT_TRUE(ListsOverlap(x, y)) << round;
    }
  }
}

}  // namespace
}  // namespace stj
