#include "src/interval/interval_codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "src/interval/interval_list.h"
#include "src/util/rng.h"

namespace stj {
namespace {

IntervalList RandomList(Rng* rng, CellId universe, double density) {
  std::vector<CellId> cells;
  for (CellId c = 0; c < universe; ++c) {
    if (rng->Bernoulli(density)) cells.push_back(c);
  }
  return IntervalList::FromCells(std::move(cells));
}

IntervalList RoundTrip(const IntervalList& list) {
  return CompressedIntervalList::Encode(list).Decode();
}

TEST(IntervalCodec, RoundTripEdgeShapes) {
  // Empty list.
  EXPECT_EQ(RoundTrip(IntervalList()), IntervalList());
  // One interval of one cell.
  EXPECT_EQ(RoundTrip(IntervalList::FromCells({42})),
            IntervalList::FromCells({42}));
  // Interval counts straddling the block size: 31, 32, 33, 64, 65.
  for (const size_t n : {size_t{1}, kCodecBlockIntervals - 1,
                         kCodecBlockIntervals, kCodecBlockIntervals + 1,
                         2 * kCodecBlockIntervals,
                         2 * kCodecBlockIntervals + 1}) {
    IntervalList list;
    for (size_t i = 0; i < n; ++i) {
      const CellId base = static_cast<CellId>(i) * 10;
      list.Append(base, base + 3);
    }
    EXPECT_EQ(RoundTrip(list), list) << n << " intervals";
  }
}

TEST(IntervalCodec, RoundTripHugeCellIds) {
  // Deltas near the 64-bit ceiling must survive the varint path.
  const CellId top = std::numeric_limits<CellId>::max();
  IntervalList list;
  list.Append(0, 1);
  list.Append(top - 10, top - 5);
  list.Append(top - 2, top);
  EXPECT_EQ(RoundTrip(list), list);
}

TEST(IntervalCodec, RoundTripRandomLists) {
  Rng rng(2026);
  for (int trial = 0; trial < 50; ++trial) {
    const IntervalList list = RandomList(&rng, 4096, rng.Uniform(0.05, 0.9));
    const CompressedIntervalList compressed =
        CompressedIntervalList::Encode(list);
    EXPECT_EQ(compressed.Decode(), list);
    EXPECT_EQ(ValidateCompressed(compressed.View()), "");
    EXPECT_EQ(compressed.Intervals(), list.Size());
  }
}

TEST(IntervalCodec, HeadersDescribeBlocks) {
  IntervalList list;
  for (size_t i = 0; i < 70; ++i) {
    const CellId base = static_cast<CellId>(i) * 100;
    list.Append(base, base + 50);
  }
  const CompressedIntervalList compressed =
      CompressedIntervalList::Encode(list);
  const CompressedIntervalView view = compressed.View();
  ASSERT_EQ(view.Blocks(), 3u);  // 32 + 32 + 6
  EXPECT_EQ(view.Header(0).count, kCodecBlockIntervals);
  EXPECT_EQ(view.Header(1).count, kCodecBlockIntervals);
  EXPECT_EQ(view.Header(2).count, 6u);
  EXPECT_EQ(view.FrontCell(), list.FrontCell());
  EXPECT_EQ(view.BackEnd(), list.BackEnd());
  // Each header's range brackets exactly its decoded intervals.
  CellInterval buf[kCodecBlockIntervals];
  size_t seen = 0;
  for (size_t b = 0; b < view.Blocks(); ++b) {
    const size_t count = view.DecodeBlock(b, buf);
    ASSERT_EQ(count, view.Header(b).count);
    EXPECT_EQ(buf[0].begin, view.Header(b).first_cell);
    EXPECT_EQ(buf[count - 1].end, view.Header(b).last_end);
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(buf[i], list[seen + i]);
    }
    seen += count;
  }
  EXPECT_EQ(seen, list.Size());
}

TEST(IntervalCodec, EncodingIsDeterministic) {
  Rng rng(11);
  const IntervalList list = RandomList(&rng, 2048, 0.4);
  const CompressedIntervalList a = CompressedIntervalList::Encode(list);
  const CompressedIntervalList b = CompressedIntervalList::Encode(list);
  EXPECT_EQ(a.Headers().size(), b.Headers().size());
  for (size_t i = 0; i < a.Headers().size(); ++i) {
    EXPECT_TRUE(a.Headers()[i] == b.Headers()[i]);
  }
  EXPECT_EQ(a.Bytes(), b.Bytes());
}

TEST(IntervalCodec, CompressionShrinksDenseLists) {
  // Dense tessellation-like lists (small gaps and lengths) must compress
  // well below the 16-byte flat representation per interval.
  IntervalList list;
  for (size_t i = 0; i < 1000; ++i) {
    const CellId base = static_cast<CellId>(i) * 8;
    list.Append(base, base + 5);
  }
  const CompressedIntervalList compressed =
      CompressedIntervalList::Encode(list);
  EXPECT_LT(compressed.ByteSize(), list.ByteSize() / 2);
}

// ---- corruption detection ----

class CodecCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(99);
    list_ = RandomList(&rng, 3000, 0.3);
    ASSERT_GT(list_.Size(), 2 * kCodecBlockIntervals);
    compressed_ = CompressedIntervalList::Encode(list_);
    ASSERT_EQ(ValidateCompressed(compressed_.View()), "");
  }

  CompressedIntervalList Tampered(
      void (*mutate)(std::vector<IntervalBlockHeader>*,
                     std::vector<uint8_t>*)) const {
    std::vector<IntervalBlockHeader> headers = compressed_.Headers();
    std::vector<uint8_t> bytes = compressed_.Bytes();
    mutate(&headers, &bytes);
    return CompressedIntervalList::FromParts(std::move(headers),
                                             std::move(bytes),
                                             compressed_.Intervals());
  }

  IntervalList list_;
  CompressedIntervalList compressed_;
};

TEST_F(CodecCorruptionTest, DetectsWrongBlockCount) {
  const CompressedIntervalList bad =
      Tampered([](std::vector<IntervalBlockHeader>* headers,
                  std::vector<uint8_t>*) { (*headers)[0].count += 1; });
  EXPECT_NE(ValidateCompressed(bad.View()), "");
}

TEST_F(CodecCorruptionTest, DetectsWrongFirstCell) {
  const CompressedIntervalList bad =
      Tampered([](std::vector<IntervalBlockHeader>* headers,
                  std::vector<uint8_t>*) { (*headers)[1].first_cell += 1; });
  EXPECT_NE(ValidateCompressed(bad.View()), "");
}

TEST_F(CodecCorruptionTest, DetectsWrongLastEnd) {
  const CompressedIntervalList bad =
      Tampered([](std::vector<IntervalBlockHeader>* headers,
                  std::vector<uint8_t>*) { (*headers)[0].last_end -= 1; });
  EXPECT_NE(ValidateCompressed(bad.View()), "");
}

TEST_F(CodecCorruptionTest, DetectsOverlappingBlockRanges) {
  const CompressedIntervalList bad = Tampered(
      [](std::vector<IntervalBlockHeader>* headers, std::vector<uint8_t>*) {
        (*headers)[1].first_cell = (*headers)[0].first_cell;
      });
  EXPECT_NE(ValidateCompressed(bad.View()), "");
}

TEST_F(CodecCorruptionTest, DetectsPayloadTampering) {
  // Flipping any payload byte must be caught by the decode-based checks
  // (header/payload consistency pins both endpoints of every block).
  for (size_t pos = 0; pos < compressed_.Bytes().size();
       pos += compressed_.Bytes().size() / 7 + 1) {
    std::vector<IntervalBlockHeader> headers = compressed_.Headers();
    std::vector<uint8_t> bytes = compressed_.Bytes();
    bytes[pos] ^= 0x40;
    const CompressedIntervalList bad = CompressedIntervalList::FromParts(
        std::move(headers), std::move(bytes), compressed_.Intervals());
    EXPECT_NE(ValidateCompressed(bad.View()), "") << "byte " << pos;
  }
}

TEST_F(CodecCorruptionTest, DetectsTruncatedPayload) {
  std::vector<IntervalBlockHeader> headers = compressed_.Headers();
  std::vector<uint8_t> bytes = compressed_.Bytes();
  bytes.pop_back();
  const CompressedIntervalList bad = CompressedIntervalList::FromParts(
      std::move(headers), std::move(bytes), compressed_.Intervals());
  EXPECT_NE(ValidateCompressed(bad.View()), "");
}

TEST_F(CodecCorruptionTest, DetectsWrongIntervalTotal) {
  const CompressedIntervalList bad = CompressedIntervalList::FromParts(
      compressed_.Headers(), compressed_.Bytes(),
      compressed_.Intervals() + 1);
  EXPECT_NE(ValidateCompressed(bad.View()), "");
}

TEST_F(CodecCorruptionTest, DecodeBlockRejectsMalformedPayload) {
  std::vector<IntervalBlockHeader> headers = compressed_.Headers();
  std::vector<uint8_t> bytes = compressed_.Bytes();
  // Truncate the first block's payload by marking every byte a continuation.
  const size_t first_block_end =
      headers.size() > 1 ? headers[1].byte_offset : bytes.size();
  for (size_t i = 0; i < first_block_end; ++i) bytes[i] |= 0x80;
  const CompressedIntervalList bad = CompressedIntervalList::FromParts(
      std::move(headers), std::move(bytes), compressed_.Intervals());
  CellInterval buf[kCodecBlockIntervals];
  EXPECT_EQ(bad.View().DecodeBlock(0, buf), 0u);
  std::vector<CellInterval> out;
  EXPECT_FALSE(DecodeCompressed(bad.View(), &out));
}

// ---- varint helpers ----

TEST(CodecVarint, RoundTripsBoundaryValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (1ull << 35) - 1,
                             1ull << 35,
                             std::numeric_limits<uint64_t>::max() - 1,
                             std::numeric_limits<uint64_t>::max()};
  std::vector<uint8_t> buf;
  for (const uint64_t v : values) codec::AppendVarint(&buf, v);
  const uint8_t* p = buf.data();
  const uint8_t* end = buf.data() + buf.size();
  for (const uint64_t v : values) {
    uint64_t decoded = 0;
    ASSERT_TRUE(codec::ReadVarint(&p, end, &decoded));
    EXPECT_EQ(decoded, v);
  }
  EXPECT_EQ(p, end);
}

TEST(CodecVarint, RejectsTruncationAndOverflow) {
  std::vector<uint8_t> buf;
  codec::AppendVarint(&buf, std::numeric_limits<uint64_t>::max());
  // Truncated: stop one byte short.
  {
    const uint8_t* p = buf.data();
    uint64_t v = 0;
    EXPECT_FALSE(codec::ReadVarint(&p, buf.data() + buf.size() - 1, &v));
  }
  // Overflow: an 11-byte continuation run cannot fit 64 bits.
  {
    const std::vector<uint8_t> over(11, 0xFF);
    const uint8_t* p = over.data();
    uint64_t v = 0;
    EXPECT_FALSE(codec::ReadVarint(&p, over.data() + over.size(), &v));
  }
}

}  // namespace
}  // namespace stj
