#include "src/interval/interval_list.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace stj {
namespace {

TEST(IntervalList, FromCellsCoalescesAdjacentIds) {
  const IntervalList list =
      IntervalList::FromCells({5, 6, 7, 10, 12, 13, 20});
  ASSERT_EQ(list.Size(), 4u);
  EXPECT_EQ(list[0], (CellInterval{5, 8}));
  EXPECT_EQ(list[1], (CellInterval{10, 11}));
  EXPECT_EQ(list[2], (CellInterval{12, 14}));
  EXPECT_EQ(list[3], (CellInterval{20, 21}));
  EXPECT_EQ(list.CellCount(), 7u);
}

TEST(IntervalList, FromCellsHandlesDuplicatesAndUnsortedInput) {
  const IntervalList list = IntervalList::FromCells({3, 1, 2, 2, 3, 1});
  ASSERT_EQ(list.Size(), 1u);
  EXPECT_EQ(list[0], (CellInterval{1, 4}));
}

TEST(IntervalList, AppendCoalescesTouchingRanges) {
  IntervalList list;
  list.Append(0, 5);
  list.Append(5, 8);    // touching: coalesce
  list.Append(10, 12);  // gap: new interval
  list.Append(11, 15);  // overlapping: extend
  ASSERT_EQ(list.Size(), 2u);
  EXPECT_EQ(list[0], (CellInterval{0, 8}));
  EXPECT_EQ(list[1], (CellInterval{10, 15}));
  EXPECT_TRUE(list.Validate().empty());
}

TEST(IntervalList, AppendIgnoresEmptyRanges) {
  IntervalList list;
  list.Append(5, 5);
  list.Append(7, 3);
  EXPECT_TRUE(list.Empty());
}

TEST(IntervalList, ContainsCell) {
  const IntervalList list = IntervalList::FromCells({1, 2, 3, 10, 11});
  EXPECT_TRUE(list.ContainsCell(1));
  EXPECT_TRUE(list.ContainsCell(3));
  EXPECT_FALSE(list.ContainsCell(4));
  EXPECT_FALSE(list.ContainsCell(0));
  EXPECT_TRUE(list.ContainsCell(10));
  EXPECT_FALSE(list.ContainsCell(12));
}

TEST(IntervalList, ValidateCatchesNonCanonicalForms) {
  {
    IntervalList empty_interval = IntervalList::FromSorted({});
    EXPECT_TRUE(empty_interval.Validate().empty());
  }
  // FromSorted asserts in debug; exercise Validate via a manual list.
  const std::vector<CellInterval> touching = {{0, 5}, {5, 8}};
  IntervalList list;
  for (const auto& iv : touching) list.Append(iv.begin, iv.end);
  // Append coalesces, so the result is canonical again.
  EXPECT_TRUE(list.Validate().empty());
  EXPECT_EQ(list.Size(), 1u);
}

TEST(IntervalList, FrontBackAndBytes) {
  const IntervalList list = IntervalList::FromCells({4, 5, 9});
  EXPECT_EQ(list.FrontCell(), 4u);
  EXPECT_EQ(list.BackEnd(), 10u);
  EXPECT_EQ(list.ByteSize(), 2 * sizeof(CellInterval));
}

TEST(IntervalList, RandomisedCanonicalInvariant) {
  Rng rng(55);
  for (int round = 0; round < 50; ++round) {
    std::vector<CellId> cells;
    const size_t n = 1 + rng.NextBounded(500);
    for (size_t i = 0; i < n; ++i) cells.push_back(rng.NextBounded(1000));
    const IntervalList list = IntervalList::FromCells(cells);
    EXPECT_TRUE(list.Validate().empty());
    // Every input cell is covered; adjacent intervals have gaps.
    for (const CellId cell : cells) EXPECT_TRUE(list.ContainsCell(cell));
  }
}

}  // namespace
}  // namespace stj
