// Differential fuzzing of the interval-relation kernels: every relation is
// evaluated three ways — per-cell set oracle, forced-scalar kernels, and the
// detected SIMD kernels — over randomized and adversarial list shapes, plus
// the compressed (block codec) overloads. On machines without AVX2/NEON (or
// with STJ_DISABLE_SIMD) the scalar and "SIMD" runs coincide and the suite
// degenerates to oracle-vs-scalar, which is still a valid check.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/datasets/scenarios.h"
#include "src/interval/interval_algebra.h"
#include "src/interval/interval_codec.h"
#include "src/interval/simd.h"
#include "src/topology/pipeline.h"
#include "src/util/cpuid.h"
#include "src/util/rng.h"

namespace stj {
namespace {

// ---- per-cell reference implementations ----

std::set<CellId> CellsOf(const IntervalList& list) {
  std::set<CellId> cells;
  for (size_t i = 0; i < list.Size(); ++i) {
    for (CellId c = list[i].begin; c < list[i].end; ++c) cells.insert(c);
  }
  return cells;
}

bool RefOverlap(const IntervalList& x, const IntervalList& y) {
  const auto a = CellsOf(x);
  for (const CellId c : CellsOf(y)) {
    if (a.count(c) != 0) return true;
  }
  return false;
}

bool RefInside(const IntervalList& x, const IntervalList& y) {
  const auto b = CellsOf(y);
  for (const CellId c : CellsOf(x)) {
    if (b.count(c) == 0) return false;
  }
  return true;
}

uint64_t RefCommon(const IntervalList& x, const IntervalList& y) {
  const auto a = CellsOf(x);
  uint64_t n = 0;
  for (const CellId c : CellsOf(y)) n += a.count(c);
  return n;
}

// ---- list shape generators (the bench sweep's shapes, smaller) ----

IntervalList RandomList(Rng* rng, CellId universe, double density) {
  std::vector<CellId> cells;
  for (CellId c = 0; c < universe; ++c) {
    if (rng->Bernoulli(density)) cells.push_back(c);
  }
  return IntervalList::FromCells(std::move(cells));
}

// Many tiny intervals (width 1-2, small gaps).
IntervalList ManyTiny(Rng* rng, size_t n) {
  IntervalList list;
  CellId at = rng->NextBounded(16);
  for (size_t i = 0; i < n; ++i) {
    const CellId len = 1 + rng->NextBounded(2);
    list.Append(at, at + len);
    at += len + 1 + rng->NextBounded(4);
  }
  return list;
}

// One huge interval somewhere in the universe.
IntervalList OneHuge(Rng* rng, CellId universe) {
  const CellId begin = rng->NextBounded(universe / 2);
  const CellId end = begin + 1 + rng->NextBounded(universe - begin);
  IntervalList list;
  list.Append(begin, end);
  return list;
}

// A random subset of x's cells (for inside/contains truthy cases).
IntervalList SubsetOf(Rng* rng, const IntervalList& x, double keep) {
  std::vector<CellId> cells;
  for (const CellId c : CellsOf(x)) {
    if (rng->Bernoulli(keep)) cells.push_back(c);
  }
  return IntervalList::FromCells(std::move(cells));
}

// ---- the differential harness ----

struct LevelGuard {
  ~LevelGuard() { simd::ForceLevel(DetectSimdLevel()); }
};

// Evaluates all five relations on (x, y) at the currently forced kernel
// level and checks them against the per-cell oracle, in both flat and
// compressed form.
void CheckPairAtCurrentLevel(const IntervalList& x, const IntervalList& y) {
  const bool overlap = RefOverlap(x, y);
  const bool inside = RefInside(x, y);      // vacuously true for empty x
  const bool contains = RefInside(y, x);
  const bool match = x == y;
  const uint64_t common = RefCommon(x, y);

  ASSERT_EQ(ListsOverlap(x, y), overlap);
  ASSERT_EQ(ListsOverlap(y, x), overlap);
  ASSERT_EQ(ListInside(x, y), inside);
  ASSERT_EQ(ListContains(x, y), contains);
  ASSERT_EQ(ListsMatch(x, y), match);
  ASSERT_EQ(ListsCommonCells(x, y), common);
  ASSERT_EQ(ListsCommonCells(y, x), common);

  // Compressed overloads over encode round trips of the same lists.
  const CompressedIntervalList cx = CompressedIntervalList::Encode(x);
  const CompressedIntervalList cy = CompressedIntervalList::Encode(y);
  ASSERT_EQ(ListsOverlap(cx.View(), cy.View()), overlap);
  ASSERT_EQ(ListsOverlap(cy.View(), cx.View()), overlap);
  ASSERT_EQ(ListInside(cx.View(), cy.View()), inside);
  ASSERT_EQ(ListContains(cx.View(), cy.View()), contains);
  ASSERT_EQ(ListsMatch(cx.View(), cy.View()), match);
  ASSERT_EQ(ListsCommonCells(cx.View(), cy.View()), common);
  ASSERT_EQ(ListsCommonCells(cy.View(), cx.View()), common);
}

// Runs CheckPairAtCurrentLevel under every kernel level the build and CPU
// provide (scalar always; AVX2/NEON when available).
void CheckPair(const IntervalList& x, const IntervalList& y) {
  const LevelGuard restore;
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kNeon}) {
    if (!simd::ForceLevel(level)) continue;
    ASSERT_EQ(simd::ActiveLevel(), level);
    CheckPairAtCurrentLevel(x, y);
    if (::testing::Test::HasFatalFailure()) {
      ADD_FAILURE() << "at kernel level " << ToString(level);
      return;
    }
  }
}

TEST(SimdDifferential, RandomDenseAndSparsePairs) {
  Rng rng(20260807);
  const double densities[] = {0.02, 0.2, 0.5, 0.85};
  for (const double dx : densities) {
    for (const double dy : densities) {
      for (int trial = 0; trial < 6; ++trial) {
        const IntervalList x = RandomList(&rng, 1500, dx);
        const IntervalList y = RandomList(&rng, 1500, dy);
        CheckPair(x, y);
        if (::testing::Test::HasFatalFailure()) {
          FAIL() << "densities " << dx << "/" << dy << " trial " << trial;
        }
      }
    }
  }
}

TEST(SimdDifferential, AdversarialShapes) {
  Rng rng(404);
  for (int trial = 0; trial < 25; ++trial) {
    // Many tiny vs one huge: the gallop/skip paths on both sides.
    CheckPair(ManyTiny(&rng, 200), OneHuge(&rng, 1200));
    // Heavy overlap: two dense lists over the same universe.
    CheckPair(RandomList(&rng, 800, 0.7), RandomList(&rng, 800, 0.7));
    // Disjoint ranges: y entirely above x (pre-check path).
    IntervalList lo = ManyTiny(&rng, 50);
    IntervalList hi;
    hi.Append(lo.BackEnd() + 5, lo.BackEnd() + 100);
    CheckPair(lo, hi);
    if (::testing::Test::HasFatalFailure()) FAIL() << "trial " << trial;
  }
}

TEST(SimdDifferential, InsideAndMatchTruthyCases) {
  // Random pairs almost never satisfy inside/match; construct them.
  Rng rng(777);
  for (int trial = 0; trial < 25; ++trial) {
    const IntervalList y = RandomList(&rng, 2000, rng.Uniform(0.2, 0.8));
    if (y.Empty()) continue;
    CheckPair(SubsetOf(&rng, y, 0.6), y);    // usually strictly inside
    CheckPair(y, y);                          // match (and inside both ways)
    CheckPair(y, SubsetOf(&rng, y, 0.9));    // contains direction
    if (::testing::Test::HasFatalFailure()) FAIL() << "trial " << trial;
  }
}

TEST(SimdDifferential, EmptyAndBoundaryLists) {
  Rng rng(5);
  const IntervalList empty;
  const IntervalList one = IntervalList::FromCells({7});
  const IntervalList some = RandomList(&rng, 300, 0.3);
  CheckPair(empty, empty);
  CheckPair(empty, some);
  CheckPair(some, empty);
  CheckPair(one, some);
  CheckPair(one, one);
}

TEST(SimdDifferential, BlockBoundaryStraddles) {
  // Interval counts around multiples of the codec block size, with the
  // interesting cells placed near block seams.
  Rng rng(31);
  for (const size_t n :
       {kCodecBlockIntervals - 1, kCodecBlockIntervals,
        kCodecBlockIntervals + 1, 3 * kCodecBlockIntervals - 1,
        3 * kCodecBlockIntervals + 2}) {
    IntervalList x;
    for (size_t i = 0; i < n; ++i) {
      const CellId base = static_cast<CellId>(i) * 6;
      x.Append(base, base + 2 + rng.NextBounded(3));
    }
    // y overlaps only around x's block seams.
    IntervalList y;
    for (size_t b = kCodecBlockIntervals; b < n; b += kCodecBlockIntervals) {
      const CellId seam = static_cast<CellId>(b) * 6;
      y.Append(seam - 3, seam + 3);
    }
    CheckPair(x, y);
    if (::testing::Test::HasFatalFailure()) FAIL() << n << " intervals";
  }
}

// ---- end-to-end join identity across kernel levels and storages ----

TEST(SimdDifferential, JoinDecisionsIdenticalAcrossLevelsAndStorages) {
  ScenarioOptions options;
  options.scale = 0.02;
  options.grid_order = 10;
  const ScenarioData scenario = BuildScenario("TC-TZ", options);
  ASSERT_FALSE(scenario.candidates.empty());

  const AprilStore r_store = AprilStore::FromApproximations(scenario.r_april);
  const AprilStore s_store = AprilStore::FromApproximations(scenario.s_april);
  const CompressedAprilStore r_cstore =
      CompressedAprilStore::FromStore(r_store);
  const CompressedAprilStore s_cstore =
      CompressedAprilStore::FromStore(s_store);

  const auto run = [&](const DatasetView& r_view, const DatasetView& s_view) {
    Pipeline pc(Method::kPC, r_view, s_view);
    std::vector<de9im::Relation> out;
    out.reserve(scenario.candidates.size());
    for (const CandidatePair& pair : scenario.candidates) {
      out.push_back(pc.FindRelation(pair.r_idx, pair.s_idx));
    }
    return out;
  };

  const DatasetView r_flat{&scenario.r.objects, &scenario.r_april};
  const DatasetView s_flat{&scenario.s.objects, &scenario.s_april};
  const DatasetView r_comp{&scenario.r.objects, nullptr, nullptr, &r_cstore};
  const DatasetView s_comp{&scenario.s.objects, nullptr, nullptr, &s_cstore};

  const LevelGuard restore;
  ASSERT_TRUE(simd::ForceLevel(SimdLevel::kScalar));
  const std::vector<de9im::Relation> scalar_flat = run(r_flat, s_flat);
  const std::vector<de9im::Relation> scalar_comp = run(r_comp, s_comp);
  ASSERT_EQ(scalar_flat, scalar_comp)
      << "compressed storage changed scalar join results";

  simd::ForceLevel(DetectSimdLevel());
  const std::vector<de9im::Relation> simd_flat = run(r_flat, s_flat);
  const std::vector<de9im::Relation> simd_comp = run(r_comp, s_comp);
  ASSERT_EQ(scalar_flat, simd_flat) << "SIMD kernels changed join results";
  ASSERT_EQ(scalar_flat, simd_comp)
      << "SIMD + compressed storage changed join results";
}

TEST(SimdDifferential, KernelTableGating) {
  // KernelsFor hands out only tables the CPU can run; the scalar table is
  // always available and self-consistent with the facade.
  const simd::Kernels* scalar = simd::KernelsFor(SimdLevel::kScalar);
  ASSERT_NE(scalar, nullptr);
  EXPECT_EQ(scalar->level, SimdLevel::kScalar);
  const SimdLevel detected = DetectSimdLevel();
  const simd::Kernels* best = simd::KernelsFor(detected);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->level, detected);
  if (detected != SimdLevel::kAvx2) {
    EXPECT_EQ(simd::KernelsFor(SimdLevel::kAvx2), nullptr);
  }
  if (detected != SimdLevel::kNeon) {
    EXPECT_EQ(simd::KernelsFor(SimdLevel::kNeon), nullptr);
  }
}

}  // namespace
}  // namespace stj
