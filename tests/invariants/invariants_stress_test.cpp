// Structure-churn drills for the deep ValidateInvariants() validators.
// Each test hammers one data structure through the operations most likely to
// break its invariants (eviction, handle recycling, table growth, CSR
// appends, degraded-mode placeholders) and runs the validator at every
// step. The validators are compiled in all build modes, so this test runs
// under the default preset too; the `invariants` preset additionally turns
// on their automatic invocation inside the library.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/geometry/polygon.h"
#include "src/interval/interval_list.h"
#include "src/join/mbr_join.h"
#include "src/raster/april.h"
#include "src/raster/april_store.h"
#include "src/raster/grid.h"
#include "src/topology/prepared_cache.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace stj {
namespace {

TEST(InvariantsStress, PreparedCacheEvictionChurn) {
  // A budget small enough to force constant eviction, keys reused in a
  // pattern that exercises hit-path LRU reordering, backward-shift deletion,
  // free-list recycling, and table growth.
  const Polygon poly = test::Square(0, 0, 1, 1);
  PreparedCache cache(/*budget_bytes=*/4096);
  Rng rng(1234);
  size_t hits = 0;
  for (int round = 0; round < 4000; ++round) {
    const auto key = static_cast<uint32_t>(rng.UniformInt(0, 96));
    if (cache.Find(key) != nullptr) {
      ++hits;
    } else {
      // Vary entry sizes so eviction stops mid-chain at different points.
      const size_t bytes = 256 + 128 * (key % 7);
      cache.Insert(key, PreparedPolygon(poly), bytes);
    }
    cache.ValidateInvariants();
    ASSERT_LE(cache.bytes(), cache.budget_bytes() + 256 + 128 * 6);
  }
  EXPECT_GT(hits, 0u);
}

TEST(InvariantsStress, PreparedCacheSingleEntryBudget) {
  // A budget smaller than any entry must still keep exactly the newest one.
  const Polygon poly = test::Square(0, 0, 1, 1);
  PreparedCache cache(/*budget_bytes=*/1);
  for (uint32_t key = 0; key < 200; ++key) {
    EXPECT_NE(cache.Insert(key, PreparedPolygon(poly), 1000), nullptr);
    cache.ValidateInvariants();
    EXPECT_EQ(cache.size(), 1u);
  }
}

TEST(InvariantsStress, AprilStoreAppendAndPlaceholderChurn) {
  Rng rng(5678);
  AprilStore store;
  store.ValidateInvariants();  // empty store is valid
  for (int record = 0; record < 500; ++record) {
    if (record % 7 == 3) {
      store.AppendCorruptPlaceholder();
    } else {
      // Random canonical C list; P is a random subset of C's intervals,
      // preserving P ⊆ C by construction.
      std::vector<CellInterval> c;
      CellId cursor = rng.UniformInt(0, 8);
      const int n = static_cast<int>(rng.UniformInt(0, 12));
      for (int i = 0; i < n; ++i) {
        const CellId begin = cursor + 1 + rng.UniformInt(0, 16);
        const CellId end = begin + 1 + rng.UniformInt(0, 32);
        c.push_back(CellInterval{begin, end});
        cursor = end;
      }
      std::vector<CellInterval> p;
      for (const CellInterval& iv : c) {
        if (rng.UniformInt(0, 2) == 0) p.push_back(iv);
      }
      store.AppendRecord(IntervalView(c.data(), c.size()),
                         IntervalView(p.data(), p.size()));
    }
    store.ValidateInvariants();
  }
  EXPECT_EQ(store.Count(), 500u);

  // Round-trip through the legacy vector form preserves the invariants.
  std::vector<AprilApproximation> legacy;
  for (size_t i = 0; i < store.Count(); ++i) {
    AprilApproximation a;
    const IntervalView c = store.Conservative(i);
    const IntervalView p = store.Progressive(i);
    a.conservative = IntervalList::FromSorted(
        std::vector<CellInterval>(c.begin(), c.end()));
    a.progressive =
        IntervalList::FromSorted(std::vector<CellInterval>(p.begin(), p.end()));
    a.usable = store.Usable(i);
    legacy.push_back(std::move(a));
  }
  const AprilStore rebuilt = AprilStore::FromApproximations(legacy);
  rebuilt.ValidateInvariants();
  EXPECT_TRUE(rebuilt == store);
}

TEST(InvariantsStress, AprilBuilderOutputsValidate) {
  Rng rng(91011);
  const RasterGrid grid(Box{Point{0, 0}, Point{16, 16}}, /*order=*/8);
  const AprilBuilder builder(&grid);
  for (int i = 0; i < 50; ++i) {
    const Polygon poly = test::RandomBlob(
        &rng, Point{rng.Uniform(2, 14), rng.Uniform(2, 14)},
        rng.Uniform(0.5, 4.0), 24, /*hole_probability=*/0.4);
    const AprilApproximation april = builder.Build(poly);
    april.ValidateInvariants();
  }
}

TEST(InvariantsStress, MbrJoinUnderInvariants) {
  // Exercises BuildCsr (whose CSR layout validator runs automatically in
  // invariants builds) across thread counts and the deterministic switch;
  // also re-checks the join's own output invariant: candidate pairs must be
  // exactly the intersecting box pairs.
  Rng rng(121314);
  std::vector<Box> r;
  std::vector<Box> s;
  for (int i = 0; i < 400; ++i) {
    const double x = rng.Uniform(0, 100);
    const double y = rng.Uniform(0, 100);
    r.push_back(Box{Point{x, y},
                    Point{x + rng.Uniform(0.1, 5), y + rng.Uniform(0.1, 5)}});
    const double u = rng.Uniform(0, 100);
    const double v = rng.Uniform(0, 100);
    s.push_back(Box{Point{u, v},
                    Point{u + rng.Uniform(0.1, 5), v + rng.Uniform(0.1, 5)}});
  }
  const std::vector<CandidatePair> expected = MbrJoin::JoinBruteForce(r, s);
  for (const unsigned threads : {1u, 2u, 4u}) {
    for (const bool deterministic : {false, true}) {
      MbrJoin::Options options;
      options.num_threads = threads;
      options.deterministic = deterministic;
      std::vector<CandidatePair> got = MbrJoin::Join(r, s, options);
      EXPECT_EQ(got.size(), expected.size())
          << "threads=" << threads << " deterministic=" << deterministic;
    }
  }
}

}  // namespace
}  // namespace stj
