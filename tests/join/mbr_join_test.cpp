#include "src/join/mbr_join.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/util/rng.h"

namespace stj {
namespace {

std::vector<Box> RandomBoxes(Rng* rng, size_t n, double max_size,
                             bool clustered = false) {
  std::vector<Box> boxes;
  boxes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double cx = rng->Uniform(0, 100);
    double cy = rng->Uniform(0, 100);
    if (clustered && i % 3 != 0) {
      cx = 50 + rng->Normal() * 5;
      cy = 50 + rng->Normal() * 5;
    }
    const double w = rng->LogUniform(0.01, max_size);
    const double h = rng->LogUniform(0.01, max_size);
    boxes.push_back(Box::Of(Point{cx, cy}, Point{cx + w, cy + h}));
  }
  return boxes;
}

void ExpectSameResult(std::vector<CandidatePair> got,
                      std::vector<CandidatePair> want) {
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].r_idx, want[i].r_idx) << i;
    EXPECT_EQ(got[i].s_idx, want[i].s_idx) << i;
  }
}

TEST(MbrJoin, EmptyInputs) {
  EXPECT_TRUE(MbrJoin::Join({}, {Box::Of(Point{0, 0}, Point{1, 1})}).empty());
  EXPECT_TRUE(MbrJoin::Join({Box::Of(Point{0, 0}, Point{1, 1})}, {}).empty());
}

TEST(MbrJoin, SinglePairSharedEdge) {
  const std::vector<Box> r = {Box::Of(Point{0, 0}, Point{1, 1})};
  const std::vector<Box> s = {Box::Of(Point{1, 0}, Point{2, 1})};
  const auto result = MbrJoin::Join(r, s);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], (CandidatePair{0, 0}));
}

TEST(MbrJoin, MatchesBruteForceOnRandomData) {
  Rng rng(301);
  for (int round = 0; round < 10; ++round) {
    const auto r = RandomBoxes(&rng, 300, 8.0);
    const auto s = RandomBoxes(&rng, 300, 8.0);
    ExpectSameResult(MbrJoin::Join(r, s), MbrJoin::JoinBruteForce(r, s));
  }
}

TEST(MbrJoin, MatchesBruteForceOnClusteredData) {
  Rng rng(303);
  const auto r = RandomBoxes(&rng, 500, 4.0, /*clustered=*/true);
  const auto s = RandomBoxes(&rng, 500, 4.0, /*clustered=*/true);
  ExpectSameResult(MbrJoin::Join(r, s), MbrJoin::JoinBruteForce(r, s));
}

TEST(MbrJoin, NoDuplicatesForLargeBoxesSpanningManyTiles) {
  Rng rng(305);
  // Large boxes replicate into many tiles; reference-point dedup must keep
  // each pair exactly once.
  const auto r = RandomBoxes(&rng, 100, 60.0);
  const auto s = RandomBoxes(&rng, 100, 60.0);
  MbrJoin::Options options;
  options.tiles_per_side = 16;
  auto result = MbrJoin::Join(r, s, options);
  auto sorted = result;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end())
      << "duplicate pair emitted";
  ExpectSameResult(result, MbrJoin::JoinBruteForce(r, s));
}

TEST(MbrJoin, ExplicitTinyTileCount) {
  Rng rng(307);
  const auto r = RandomBoxes(&rng, 200, 10.0);
  const auto s = RandomBoxes(&rng, 200, 10.0);
  MbrJoin::Options options;
  options.tiles_per_side = 1;  // degenerate: single tile = plain sweep
  ExpectSameResult(MbrJoin::Join(r, s, options),
                   MbrJoin::JoinBruteForce(r, s));
}

TEST(MbrJoin, IdenticalDatasets) {
  Rng rng(309);
  const auto r = RandomBoxes(&rng, 150, 6.0);
  ExpectSameResult(MbrJoin::Join(r, r), MbrJoin::JoinBruteForce(r, r));
}

MbrJoin::Options Opt(uint32_t tiles, unsigned threads,
                     bool deterministic = false) {
  MbrJoin::Options options;
  options.tiles_per_side = tiles;
  options.num_threads = threads;
  options.deterministic = deterministic;
  return options;
}

TEST(MbrJoin, MatchesBruteForceAcrossSeedsTilesAndThreads) {
  for (const uint64_t seed : {311u, 313u, 317u}) {
    Rng rng(seed);
    const auto r = RandomBoxes(&rng, 250, 8.0);
    const auto s = RandomBoxes(&rng, 250, 8.0);
    const auto want = MbrJoin::JoinBruteForce(r, s);
    for (const uint32_t tiles : {0u, 1u, 4u, 16u}) {
      for (const unsigned threads : {1u, 2u, 8u}) {
        SCOPED_TRACE(::testing::Message() << "seed=" << seed << " tiles="
                                          << tiles << " threads=" << threads);
        ExpectSameResult(MbrJoin::Join(r, s, Opt(tiles, threads)), want);
      }
    }
  }
}

TEST(MbrJoin, AllIdenticalBoxes) {
  // Every box equals every other: the worst case for both the sweep (all
  // entries tie on xmin) and the reference-point rule (one tile owns all
  // n^2 pairs).
  const std::vector<Box> r(40, Box::Of(Point{10, 10}, Point{12, 12}));
  const std::vector<Box> s(40, Box::Of(Point{10, 10}, Point{12, 12}));
  const auto want = MbrJoin::JoinBruteForce(r, s);
  ASSERT_EQ(want.size(), 1600u);
  for (const unsigned threads : {1u, 8u}) {
    ExpectSameResult(MbrJoin::Join(r, s, Opt(8, threads)), want);
  }
}

TEST(MbrJoin, ZeroAreaBoxesAcrossThreads) {
  Rng rng(319);
  std::vector<Box> r;
  std::vector<Box> s;
  for (int i = 0; i < 120; ++i) {
    const double x = rng.Uniform(0, 50);
    const double y = rng.Uniform(0, 50);
    // Points, horizontal segments, vertical segments.
    r.push_back(Box::Of(Point{x, y}, Point{x, y}));
    s.push_back(i % 2 == 0 ? Box::Of(Point{x - 1, y}, Point{x + 1, y})
                           : Box::Of(Point{x, y - 1}, Point{x, y + 1}));
  }
  const auto want = MbrJoin::JoinBruteForce(r, s);
  for (const unsigned threads : {1u, 2u, 8u}) {
    ExpectSameResult(MbrJoin::Join(r, s, Opt(8, threads)), want);
  }
}

TEST(MbrJoin, EmptyBoxesInInputAreIgnored) {
  Rng rng(321);
  auto r = RandomBoxes(&rng, 60, 6.0);
  auto s = RandomBoxes(&rng, 60, 6.0);
  for (size_t i = 0; i < r.size(); i += 5) r[i] = Box::Empty();
  for (size_t i = 0; i < s.size(); i += 7) s[i] = Box::Empty();
  // Empty boxes intersect nothing in both the grid join and brute force.
  ExpectSameResult(MbrJoin::Join(r, s, Opt(4, 2)),
                   MbrJoin::JoinBruteForce(r, s));
}

TEST(MbrJoin, EmptySidesWithManyThreads) {
  Rng rng(323);
  const auto r = RandomBoxes(&rng, 50, 5.0);
  EXPECT_TRUE(MbrJoin::Join(r, {}, Opt(0, 8)).empty());
  EXPECT_TRUE(MbrJoin::Join({}, r, Opt(0, 8)).empty());
}

TEST(MbrJoin, DeterministicModeIsByteIdenticalAcrossThreadCounts) {
  Rng rng(325);
  const auto r = RandomBoxes(&rng, 400, 10.0, /*clustered=*/true);
  const auto s = RandomBoxes(&rng, 400, 10.0, /*clustered=*/true);
  const auto baseline = MbrJoin::Join(r, s, Opt(16, 1, /*deterministic=*/true));
  ASSERT_FALSE(baseline.empty());
  for (const unsigned threads : {2u, 3u, 8u}) {
    const auto result = MbrJoin::Join(r, s, Opt(16, threads, true));
    // Exact sequence equality, not just the same set.
    ASSERT_EQ(result.size(), baseline.size()) << threads;
    for (size_t i = 0; i < result.size(); ++i) {
      ASSERT_EQ(result[i], baseline[i]) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(MbrJoin, RunToRunReproducible) {
  // Tied xmin values used to leave the per-tile order unspecified; the idx
  // tiebreaker makes repeated runs identical, pair by pair.
  Rng rng(327);
  std::vector<Box> r;
  std::vector<Box> s;
  for (int i = 0; i < 200; ++i) {
    const double x = static_cast<double>(i % 10);  // many ties on xmin
    r.push_back(Box::Of(Point{x, 0}, Point{x + 2, 50}));
    s.push_back(Box::Of(Point{x + 1, 0}, Point{x + 3, 50}));
  }
  const auto first = MbrJoin::Join(r, s, Opt(8, 1));
  const auto second = MbrJoin::Join(r, s, Opt(8, 1));
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i], second[i]) << i;
  }
}

TEST(MbrJoin, PointLikeBoxes) {
  // Degenerate zero-area boxes must still join by containment/touch.
  const std::vector<Box> r = {Box::Of(Point{5, 5}, Point{5, 5})};
  const std::vector<Box> s = {Box::Of(Point{0, 0}, Point{10, 10}),
                              Box::Of(Point{5, 5}, Point{5, 5}),
                              Box::Of(Point{6, 6}, Point{7, 7})};
  const auto result = MbrJoin::Join(r, s);
  EXPECT_EQ(result.size(), 2u);
}

}  // namespace
}  // namespace stj
