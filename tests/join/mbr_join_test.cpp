#include "src/join/mbr_join.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/util/rng.h"

namespace stj {
namespace {

std::vector<Box> RandomBoxes(Rng* rng, size_t n, double max_size,
                             bool clustered = false) {
  std::vector<Box> boxes;
  boxes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double cx = rng->Uniform(0, 100);
    double cy = rng->Uniform(0, 100);
    if (clustered && i % 3 != 0) {
      cx = 50 + rng->Normal() * 5;
      cy = 50 + rng->Normal() * 5;
    }
    const double w = rng->LogUniform(0.01, max_size);
    const double h = rng->LogUniform(0.01, max_size);
    boxes.push_back(Box::Of(Point{cx, cy}, Point{cx + w, cy + h}));
  }
  return boxes;
}

void ExpectSameResult(std::vector<CandidatePair> got,
                      std::vector<CandidatePair> want) {
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].r_idx, want[i].r_idx) << i;
    EXPECT_EQ(got[i].s_idx, want[i].s_idx) << i;
  }
}

TEST(MbrJoin, EmptyInputs) {
  EXPECT_TRUE(MbrJoin::Join({}, {Box::Of(Point{0, 0}, Point{1, 1})}).empty());
  EXPECT_TRUE(MbrJoin::Join({Box::Of(Point{0, 0}, Point{1, 1})}, {}).empty());
}

TEST(MbrJoin, SinglePairSharedEdge) {
  const std::vector<Box> r = {Box::Of(Point{0, 0}, Point{1, 1})};
  const std::vector<Box> s = {Box::Of(Point{1, 0}, Point{2, 1})};
  const auto result = MbrJoin::Join(r, s);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], (CandidatePair{0, 0}));
}

TEST(MbrJoin, MatchesBruteForceOnRandomData) {
  Rng rng(301);
  for (int round = 0; round < 10; ++round) {
    const auto r = RandomBoxes(&rng, 300, 8.0);
    const auto s = RandomBoxes(&rng, 300, 8.0);
    ExpectSameResult(MbrJoin::Join(r, s), MbrJoin::JoinBruteForce(r, s));
  }
}

TEST(MbrJoin, MatchesBruteForceOnClusteredData) {
  Rng rng(303);
  const auto r = RandomBoxes(&rng, 500, 4.0, /*clustered=*/true);
  const auto s = RandomBoxes(&rng, 500, 4.0, /*clustered=*/true);
  ExpectSameResult(MbrJoin::Join(r, s), MbrJoin::JoinBruteForce(r, s));
}

TEST(MbrJoin, NoDuplicatesForLargeBoxesSpanningManyTiles) {
  Rng rng(305);
  // Large boxes replicate into many tiles; reference-point dedup must keep
  // each pair exactly once.
  const auto r = RandomBoxes(&rng, 100, 60.0);
  const auto s = RandomBoxes(&rng, 100, 60.0);
  MbrJoin::Options options;
  options.tiles_per_side = 16;
  auto result = MbrJoin::Join(r, s, options);
  auto sorted = result;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end())
      << "duplicate pair emitted";
  ExpectSameResult(result, MbrJoin::JoinBruteForce(r, s));
}

TEST(MbrJoin, ExplicitTinyTileCount) {
  Rng rng(307);
  const auto r = RandomBoxes(&rng, 200, 10.0);
  const auto s = RandomBoxes(&rng, 200, 10.0);
  MbrJoin::Options options;
  options.tiles_per_side = 1;  // degenerate: single tile = plain sweep
  ExpectSameResult(MbrJoin::Join(r, s, options),
                   MbrJoin::JoinBruteForce(r, s));
}

TEST(MbrJoin, IdenticalDatasets) {
  Rng rng(309);
  const auto r = RandomBoxes(&rng, 150, 6.0);
  ExpectSameResult(MbrJoin::Join(r, r), MbrJoin::JoinBruteForce(r, r));
}

TEST(MbrJoin, PointLikeBoxes) {
  // Degenerate zero-area boxes must still join by containment/touch.
  const std::vector<Box> r = {Box::Of(Point{5, 5}, Point{5, 5})};
  const std::vector<Box> s = {Box::Of(Point{0, 0}, Point{10, 10}),
                              Box::Of(Point{5, 5}, Point{5, 5}),
                              Box::Of(Point{6, 6}, Point{7, 7})};
  const auto result = MbrJoin::Join(r, s);
  EXPECT_EQ(result.size(), 2u);
}

}  // namespace
}  // namespace stj
