#include "src/join/partitioner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/geometry/box.h"
#include "src/geometry/tile_grid.h"
#include "src/util/rng.h"

namespace stj {
namespace {

// Skewed workload: most of the mass in a few dense clusters (Plummer-style
// knots), a thin uniform background, and a handful of huge boxes that span
// many tiles — the shape that breaks equal-width grids and exercises both
// the weighted quantiles and the coarsening loop.
struct Workload {
  std::vector<Box> mbrs;
  std::vector<uint64_t> units;
};

Workload SkewedWorkload(size_t n, uint64_t seed) {
  Rng rng(seed);
  const Point centers[] = {{0.15, 0.2}, {0.17, 0.22}, {0.8, 0.75}};
  Workload w;
  w.mbrs.reserve(n);
  w.units.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Point c;
    double half;
    if (rng.Bernoulli(0.02)) {  // large outlier spanning many tiles
      c = Point{rng.Uniform(0.2, 0.8), rng.Uniform(0.2, 0.8)};
      half = rng.Uniform(0.1, 0.3);
    } else if (rng.Bernoulli(0.9)) {  // clustered mass
      const Point& k = centers[rng.NextBounded(3)];
      c = Point{k.x + 0.02 * rng.Normal(), k.y + 0.02 * rng.Normal()};
      half = rng.LogUniform(1e-4, 1e-2);
    } else {  // uniform background
      c = Point{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)};
      half = rng.LogUniform(1e-4, 5e-2);
    }
    w.mbrs.push_back(Box::Of(Point{c.x - half, c.y - half},
                             Point{c.x + half, c.y + half}));
    // Units span three orders of magnitude — vertex-heavy outliers dominate.
    w.units.push_back(static_cast<uint64_t>(rng.LogUniform(2.0, 4000.0)));
  }
  return w;
}

// Per-tile membership sets from the CSR assignment.
std::vector<std::vector<uint32_t>> Members(const TilePartition& part) {
  std::vector<std::vector<uint32_t>> members(part.Tiles());
  for (uint32_t t = 0; t < part.Tiles(); ++t) {
    members[t].assign(part.entries.begin() + part.tile_begin[t],
                      part.entries.begin() + part.tile_begin[t + 1]);
  }
  return members;
}

bool Assigned(const std::vector<std::vector<uint32_t>>& members, uint32_t tile,
              uint32_t object) {
  return std::binary_search(members[tile].begin(), members[tile].end(),
                            object);
}

TEST(PartitionerTest, EveryMbrPointMapsToAnAssignedTile) {
  const Workload w = SkewedWorkload(400, 11);
  PartitionOptions options;
  options.target_tiles = 16;
  const TilePartition part = BuildCostBalancedPartition(w.mbrs, w.units,
                                                        options);
  part.ValidateInvariants(w.units);
  const auto members = Members(part);

  // The dedup contract: TileOf is a total partition of the plane, and any
  // point inside an object's MBR must map to a tile that object is assigned
  // to — otherwise the tile-pair task owning a reference point could miss
  // one side of the pair. Sample corners, center, edges, and random
  // interior points of every MBR.
  Rng rng(99);
  for (uint32_t i = 0; i < w.mbrs.size(); ++i) {
    const Box& b = w.mbrs[i];
    std::vector<Point> samples = {
        b.min, b.max, {b.min.x, b.max.y}, {b.max.x, b.min.y}, b.Center(),
        {b.min.x, b.Center().y}, {b.max.x, b.Center().y},
        {b.Center().x, b.min.y}, {b.Center().x, b.max.y}};
    for (int k = 0; k < 4; ++k) {
      samples.push_back(Point{rng.Uniform(b.min.x, b.max.x),
                              rng.Uniform(b.min.y, b.max.y)});
    }
    for (const Point& p : samples) {
      const uint32_t tile = part.grid.TileOf(p);
      ASSERT_TRUE(Assigned(members, tile, i))
          << "object " << i << " missing from tile " << tile << " containing ("
          << p.x << ", " << p.y << ")";
    }
  }
}

TEST(PartitionerTest, NoSpuriousAssignments) {
  const Workload w = SkewedWorkload(300, 23);
  PartitionOptions options;
  options.target_tiles = 25;
  const TilePartition part = BuildCostBalancedPartition(w.mbrs, w.units,
                                                        options);
  const auto members = Members(part);
  // Converse direction: an assigned tile's closed rectangle must actually
  // touch the object's MBR (replication is MBR overlap, nothing broader).
  for (uint32_t t = 0; t < part.Tiles(); ++t) {
    const Box tile_box = part.grid.TileBounds(t);
    for (const uint32_t i : members[t]) {
      EXPECT_TRUE(w.mbrs[i].Intersects(tile_box))
          << "object " << i << " spuriously assigned to tile " << t;
    }
  }
}

TEST(PartitionerTest, ImbalanceWithinConfiguredFactorUnderSkew) {
  const Workload w = SkewedWorkload(1500, 7);
  PartitionOptions options;
  options.target_tiles = 64;
  options.max_imbalance = 2.0;
  const TilePartition part = BuildCostBalancedPartition(w.mbrs, w.units,
                                                        options);
  part.ValidateInvariants(w.units);
  EXPECT_LE(part.MaxImbalance(), options.max_imbalance + 1e-9);
  // The coarsening guarantee must not be achieved by collapsing every
  // skewed input to one tile — this workload splits fine.
  EXPECT_GT(part.Tiles(), 1u);
}

TEST(PartitionerTest, DisabledImbalanceCheckKeepsRequestedTiles) {
  const Workload w = SkewedWorkload(500, 3);
  PartitionOptions options;
  options.target_tiles = 36;
  options.max_imbalance = 0.0;  // <= 1 disables coarsening
  const TilePartition part = BuildCostBalancedPartition(w.mbrs, w.units,
                                                        options);
  // 36 factors into 6 x 6 exactly.
  EXPECT_EQ(part.Tiles(), 36u);
}

TEST(PartitionerTest, DeterministicRebuild) {
  const Workload w = SkewedWorkload(600, 42);
  PartitionOptions options;
  options.target_tiles = 16;
  const TilePartition a = BuildCostBalancedPartition(w.mbrs, w.units, options);
  const TilePartition b = BuildCostBalancedPartition(w.mbrs, w.units, options);
  EXPECT_TRUE(a.grid == b.grid);
  EXPECT_EQ(a.tile_begin, b.tile_begin);
  EXPECT_EQ(a.entries, b.entries);
  EXPECT_EQ(a.tile_units, b.tile_units);
  EXPECT_EQ(a.assigned_units, b.assigned_units);
}

TEST(PartitionerTest, ReferencePointOwnerHoldsBothObjects) {
  // The scheduler's dedup rule across TWO independent partitions: for an
  // MBR-intersecting pair (r, s), the reference point (componentwise max of
  // the two min corners) lies in both MBRs, so tile TileOf_r(ref) must hold
  // r and TileOf_s(ref) must hold s — the owning tile-pair task sees the
  // pair. Consistency here is what makes the sharded join exact.
  const Workload wr = SkewedWorkload(250, 5);
  const Workload ws = SkewedWorkload(250, 6);
  PartitionOptions options;
  options.target_tiles = 9;
  const TilePartition pr = BuildCostBalancedPartition(wr.mbrs, wr.units,
                                                      options);
  options.target_tiles = 16;  // deliberately different grids per side
  const TilePartition ps = BuildCostBalancedPartition(ws.mbrs, ws.units,
                                                      options);
  const auto r_members = Members(pr);
  const auto s_members = Members(ps);

  size_t pairs = 0;
  for (uint32_t i = 0; i < wr.mbrs.size(); ++i) {
    for (uint32_t j = 0; j < ws.mbrs.size(); ++j) {
      if (!wr.mbrs[i].Intersects(ws.mbrs[j])) continue;
      ++pairs;
      const Point ref{std::max(wr.mbrs[i].min.x, ws.mbrs[j].min.x),
                      std::max(wr.mbrs[i].min.y, ws.mbrs[j].min.y)};
      const uint32_t rt = pr.grid.TileOf(ref);
      const uint32_t st = ps.grid.TileOf(ref);
      ASSERT_TRUE(Assigned(r_members, rt, i))
          << "pair (" << i << ", " << j << "): r missing from owner tile";
      ASSERT_TRUE(Assigned(s_members, st, j))
          << "pair (" << i << ", " << j << "): s missing from owner tile";
    }
  }
  ASSERT_GT(pairs, 100u) << "workload produced too few candidate pairs";
}

TEST(PartitionerTest, SingleTileHoldsEveryObjectOnce) {
  const Workload w = SkewedWorkload(100, 17);
  PartitionOptions options;
  options.target_tiles = 1;
  const TilePartition part = BuildCostBalancedPartition(w.mbrs, w.units,
                                                        options);
  ASSERT_EQ(part.Tiles(), 1u);
  ASSERT_EQ(part.entries.size(), w.mbrs.size());
  for (uint32_t i = 0; i < w.mbrs.size(); ++i) {
    EXPECT_EQ(part.entries[i], i);
  }
  EXPECT_EQ(part.MaxImbalance(), 1.0);
}

TEST(PartitionerTest, EmptyInputBuildsValidEmptyPartition) {
  const TilePartition part = BuildCostBalancedPartition({}, {}, {});
  part.ValidateInvariants({});
  EXPECT_TRUE(part.entries.empty());
  EXPECT_EQ(part.assigned_units, 0u);
  EXPECT_GE(part.Tiles(), 1u);
}

TEST(PartitionerTest, UnitsPerTileDerivesTileCount) {
  const Workload w = SkewedWorkload(400, 8);
  uint64_t total = 0;
  for (const uint64_t u : w.units) total += u == 0 ? 1 : u;
  PartitionOptions options;
  options.units_per_tile = total / 10;
  options.max_imbalance = 0.0;  // keep the derived count observable
  const TilePartition part = BuildCostBalancedPartition(w.mbrs, w.units,
                                                        options);
  // ~10 requested tiles, factored into a near-square layout.
  EXPECT_GE(part.Tiles(), 6u);
  EXPECT_LE(part.Tiles(), 16u);
}

TEST(TileGridTest, TileOfIsTotalAndClamped) {
  const Box domain = Box::Of(Point{0.0, 0.0}, Point{4.0, 2.0});
  const TileGrid grid = MakeUniformTileGrid(domain, 4, 2);
  grid.ValidateInvariants();
  // Interior points.
  EXPECT_EQ(grid.TileOf(Point{0.5, 0.5}), grid.TileId(0, 0));
  EXPECT_EQ(grid.TileOf(Point{3.5, 1.5}), grid.TileId(3, 1));
  // Half-open boundaries: a point on an internal boundary belongs to the
  // tile on its upper side.
  EXPECT_EQ(grid.TileOf(Point{1.0, 0.5}), grid.TileId(1, 0));
  EXPECT_EQ(grid.TileOf(Point{0.5, 1.0}), grid.TileId(0, 1));
  // Clamping: points outside the domain land in edge tiles — TileOf is
  // total over the plane, which the dedup rule requires.
  EXPECT_EQ(grid.TileOf(Point{-10.0, -10.0}), grid.TileId(0, 0));
  EXPECT_EQ(grid.TileOf(Point{10.0, 10.0}), grid.TileId(3, 1));
  // The domain max corner maps to the last tile, not out of range.
  EXPECT_EQ(grid.TileOf(domain.max), grid.TileId(3, 1));
}

TEST(TileGridTest, RangesCoverOverlappedTiles) {
  const Box domain = Box::Of(Point{0.0, 0.0}, Point{3.0, 3.0});
  const TileGrid grid = MakeUniformTileGrid(domain, 3, 3);
  uint32_t lo, hi;
  grid.ColumnRange(0.5, 2.5, &lo, &hi);
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 2u);
  grid.RowRange(1, 1.2, 1.8, &lo, &hi);
  EXPECT_EQ(lo, 1u);
  EXPECT_EQ(hi, 1u);
}

}  // namespace
}  // namespace stj
