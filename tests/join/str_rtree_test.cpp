#include "src/join/str_rtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/util/rng.h"

namespace stj {
namespace {

std::vector<Box> RandomBoxes(Rng* rng, size_t n, double max_size) {
  std::vector<Box> boxes;
  boxes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double cx = rng->Uniform(0, 100);
    const double cy = rng->Uniform(0, 100);
    boxes.push_back(Box::Of(
        Point{cx, cy}, Point{cx + rng->LogUniform(0.01, max_size),
                             cy + rng->LogUniform(0.01, max_size)}));
  }
  return boxes;
}

TEST(StrRTree, EmptyTree) {
  const StrRTree tree((std::vector<Box>()));
  EXPECT_TRUE(tree.Empty());
  EXPECT_TRUE(tree.QueryIndices(Box::Of(Point{0, 0}, Point{1, 1})).empty());
}

TEST(StrRTree, SingleBox) {
  const StrRTree tree({Box::Of(Point{2, 2}, Point{4, 4})});
  EXPECT_EQ(tree.Size(), 1u);
  EXPECT_EQ(tree.Height(), 1u);
  EXPECT_EQ(tree.QueryIndices(Box::Of(Point{3, 3}, Point{5, 5})).size(), 1u);
  EXPECT_TRUE(tree.QueryIndices(Box::Of(Point{5, 5}, Point{6, 6})).empty());
  // Shared-edge windows count as intersecting (closed boxes).
  EXPECT_EQ(tree.QueryIndices(Box::Of(Point{4, 2}, Point{5, 4})).size(), 1u);
}

TEST(StrRTree, SkipsEmptyBoxesButKeepsIndices) {
  std::vector<Box> boxes = {Box::Of(Point{0, 0}, Point{1, 1}), Box::Empty(),
                            Box::Of(Point{2, 2}, Point{3, 3})};
  const StrRTree tree(boxes);
  EXPECT_EQ(tree.Size(), 2u);
  const auto hits = tree.QueryIndices(Box::Of(Point{0, 0}, Point{10, 10}));
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 0u);
  EXPECT_EQ(hits[1], 2u);  // original index preserved
}

TEST(StrRTree, QueryMatchesLinearScan) {
  Rng rng(1001);
  const std::vector<Box> boxes = RandomBoxes(&rng, 2000, 6.0);
  const StrRTree tree(boxes);
  EXPECT_GT(tree.Height(), 1u);
  for (int q = 0; q < 200; ++q) {
    const double cx = rng.Uniform(0, 100);
    const double cy = rng.Uniform(0, 100);
    const Box window = Box::Of(
        Point{cx, cy},
        Point{cx + rng.LogUniform(0.1, 30.0), cy + rng.LogUniform(0.1, 30.0)});
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < boxes.size(); ++i) {
      if (boxes[i].Intersects(window)) expected.push_back(i);
    }
    ASSERT_EQ(tree.QueryIndices(window), expected) << "query " << q;
  }
}

TEST(StrRTree, JoinMatchesGridJoin) {
  Rng rng(1003);
  const std::vector<Box> r = RandomBoxes(&rng, 800, 5.0);
  const std::vector<Box> s = RandomBoxes(&rng, 700, 5.0);
  const StrRTree tree(s);
  std::vector<CandidatePair> via_tree = tree.JoinWith(r);
  std::vector<CandidatePair> via_grid = MbrJoin::Join(r, s);
  std::sort(via_tree.begin(), via_tree.end());
  std::sort(via_grid.begin(), via_grid.end());
  ASSERT_EQ(via_tree.size(), via_grid.size());
  for (size_t i = 0; i < via_tree.size(); ++i) {
    ASSERT_EQ(via_tree[i].r_idx, via_grid[i].r_idx) << i;
    ASSERT_EQ(via_tree[i].s_idx, via_grid[i].s_idx) << i;
  }
}

TEST(StrRTree, HeightGrowsLogarithmically) {
  Rng rng(1005);
  const StrRTree small(RandomBoxes(&rng, 16, 1.0));
  EXPECT_EQ(small.Height(), 1u);
  const StrRTree medium(RandomBoxes(&rng, 17, 1.0));
  EXPECT_EQ(medium.Height(), 2u);
  const StrRTree large(RandomBoxes(&rng, 5000, 1.0));
  EXPECT_LE(large.Height(), 4u);  // 16^3 = 4096 < 5000 <= 16^4
}

}  // namespace
}  // namespace stj
