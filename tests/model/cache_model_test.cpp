// Exhaustive interleaving checks for the PinnedByteLruCache pin/evict/
// charge protocol (src/util/pinned_byte_cache.h, DESIGN.md §16).
//
// Scenarios enumerate every schedule of small pinner/getter/evictor
// programs and assert, after EVERY step of EVERY path:
//   - structural consistency (cache.ValidateInvariants(): index <-> LRU
//     agreement, byte accounting, positive pin counts);
//   - pinned residents never leave: a key that is resident and pinned
//     stays resident until its unpin, whatever eviction pressure peers
//     apply;
//   - charges balance: armed_budget - exec.budget_remaining() equals
//     cache.bytes() exactly, at every step and after destruction.
//
// The tripwire build (tests/model/tripwire, -DSTJ_MODEL_CACHE_CORRUPT)
// makes EvictOne ignore the pin table; the pinned-resident scenario must
// fail there.

#include <cstdint>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/exec_context.h"
#include "src/util/pinned_byte_cache.h"
#include "src/util/status.h"
#include "tests/model/interleave.h"

namespace stj {
namespace {

using model::ExploreAll;
using model::ExploreResult;
using model::Instance;
using model::Op;
using model::ThreadProgram;

using Cache = PinnedByteLruCache<int>;

/// World: an ExecContext with an armed byte budget and the cache as its
/// only charger, plus the observation state the invariants need.
struct CacheWorld {
  CacheWorld(size_t cache_budget, size_t exec_budget)
      : armed(exec_budget), cache(cache_budget, &exec) {
    exec.SetMemoryBudget(exec_budget);
  }

  ExecContext exec;
  const size_t armed;
  Cache cache;
  /// Keys currently pinned AND observed resident: these must stay resident.
  std::set<uint64_t> pinned_resident;
  int failed_gets = 0;  ///< Gets that returned null (budget trip).
};

Cache::Loader LoadBytes(size_t bytes) {
  return [bytes](int* value, size_t* out_bytes) {
    *value = static_cast<int>(bytes);
    *out_bytes = bytes;
    return Status::Ok();
  };
}

Op Get(const std::shared_ptr<CacheWorld>& w, uint64_t key, size_t bytes) {
  return Op{"Get", nullptr, [w, key, bytes] {
              Status st;
              const int* v = w->cache.Get(key, LoadBytes(bytes), &st);
              if (v == nullptr) {
                ASSERT_FALSE(st.ok());
                ++w->failed_gets;
                return;
              }
              ASSERT_EQ(*v, static_cast<int>(bytes));
              if (w->cache.IsPinned(key)) w->pinned_resident.insert(key);
            }};
}

Op Pin(const std::shared_ptr<CacheWorld>& w, uint64_t key) {
  return Op{"Pin", nullptr, [w, key] {
              w->cache.Pin(key);
              if (w->cache.Contains(key)) w->pinned_resident.insert(key);
            }};
}

Op Unpin(const std::shared_ptr<CacheWorld>& w, uint64_t key) {
  return Op{"Unpin", nullptr, [w, key] {
              w->cache.Unpin(key);
              if (!w->cache.IsPinned(key)) w->pinned_resident.erase(key);
            }};
}

/// The every-step invariant bundle.
void CheckStep(const CacheWorld& w) {
  w.cache.ValidateInvariants();
  // Pinned residents never evicted.
  for (const uint64_t key : w.pinned_resident) {
    ASSERT_TRUE(w.cache.Contains(key))
        << "pinned key " << key << " was evicted";
    ASSERT_TRUE(w.cache.IsPinned(key));
  }
  // Charge balance: the cache is the context's only charger, so armed
  // budget minus remaining is exactly the resident bytes.
  ASSERT_EQ(w.armed - static_cast<size_t>(w.exec.budget_remaining()),
            w.cache.bytes());
}

// ---------------------------------------------------------------------------

// Two tasks, scheduler-style: each pins its key, loads it, works (a peer
// load applies eviction pressure meanwhile), unpins. Budget fits only one
// entry, so every interleaving forces eviction decisions — and no schedule
// may evict a pinned resident.
TEST(CacheModel, PinnedShardsSurviveEvictionPressure) {
  const ExploreResult r = ExploreAll([] {
    auto w = std::make_shared<CacheWorld>(/*cache_budget=*/10,
                                          /*exec_budget=*/1u << 20);
    Instance inst;
    inst.world = w;
    inst.threads = {
        ThreadProgram{"task-a", {Pin(w, 1), Get(w, 1, 8), Unpin(w, 1)}},
        ThreadProgram{"task-b", {Pin(w, 2), Get(w, 2, 8), Unpin(w, 2)}},
        ThreadProgram{"scanner", {Get(w, 3, 8)}},
    };
    inst.check_step = [w] { CheckStep(*w); };
    inst.check_final = [w] {
      ASSERT_EQ(w->failed_gets, 0);  // Exec budget is generous here.
      // All pins released: the cache may now shrink to budget on the next
      // pressure, but nothing below is owed.
      ASSERT_FALSE(w->cache.IsPinned(1));
      ASSERT_FALSE(w->cache.IsPinned(2));
    };
    return inst;
  });
  EXPECT_GT(r.schedules, 0u);
  EXPECT_EQ(r.deadlocks, 0u);
}

// Charge/release balance under a *tight* ExecContext budget: some loads
// trip kMemoryExceeded and must abandon cleanly (nothing resident, nothing
// charged); evictions must release exactly what their load charged. The
// every-step balance equation is the whole point.
TEST(CacheModel, ChargeReleaseBalanceUnderBudgetTrips) {
  uint64_t failed_paths = 0;
  const ExploreResult r = ExploreAll([&failed_paths] {
    // Cache budget huge (no evictions by budget), exec budget 20: three
    // 8-byte loads cannot all fit; pins force residency competition.
    auto w = std::make_shared<CacheWorld>(/*cache_budget=*/1u << 20,
                                          /*exec_budget=*/20);
    Instance inst;
    inst.world = w;
    inst.threads = {
        ThreadProgram{"t1", {Pin(w, 1), Get(w, 1, 8), Unpin(w, 1)}},
        ThreadProgram{"t2", {Get(w, 2, 8), Get(w, 3, 8)}},
    };
    inst.check_step = [w] { CheckStep(*w); };
    inst.check_final = [w, &failed_paths] {
      if (w->failed_gets > 0) ++failed_paths;
      // However the path went, the books balance at the end too.
      ASSERT_EQ(w->armed - static_cast<size_t>(w->exec.budget_remaining()),
                w->cache.bytes());
    };
    return inst;
  });
  EXPECT_GT(r.schedules, 0u);
  EXPECT_EQ(r.deadlocks, 0u);
  // The tight budget actually bites on every path (3 * 8 > 20), so the
  // failed-charge unwind path is genuinely exercised.
  EXPECT_EQ(failed_paths, r.schedules);
}

// Destruction releases every outstanding charge: after the cache dies, the
// context's remaining budget is back to the armed value.
TEST(CacheModel, DestructorReleasesAllCharges) {
  const ExploreResult r = ExploreAll([] {
    auto w = std::make_shared<CacheWorld>(/*cache_budget=*/64,
                                          /*exec_budget=*/1u << 20);
    Instance inst;
    inst.world = w;
    inst.threads = {
        ThreadProgram{"t1", {Get(w, 1, 8), Get(w, 2, 8)}},
        ThreadProgram{"t2", {Get(w, 3, 8)}},
    };
    inst.check_step = [w] { CheckStep(*w); };
    inst.check_final = [w] {
      // Rebuild a scoped cache over the same context to exercise the
      // destructor-release path deterministically inside the schedule.
      {
        Cache scoped(16, &w->exec);
        Status st;
        ASSERT_NE(scoped.Get(9, LoadBytes(8), &st), nullptr);
      }
      ASSERT_EQ(w->armed - static_cast<size_t>(w->exec.budget_remaining()),
                w->cache.bytes())
          << "scoped cache destructor leaked its charge";
    };
    return inst;
  });
  EXPECT_GT(r.schedules, 0u);
  EXPECT_EQ(r.deadlocks, 0u);
}

// Counted pins compose: two independent pinners of the same key; the key
// stays resident until the LAST unpin, not the first.
TEST(CacheModel, CountedPinsComposeAcrossThreads) {
  const ExploreResult r = ExploreAll([] {
    auto w = std::make_shared<CacheWorld>(/*cache_budget=*/10,
                                          /*exec_budget=*/1u << 20);
    Instance inst;
    inst.world = w;
    inst.threads = {
        ThreadProgram{"pinner-a", {Pin(w, 1), Get(w, 1, 8), Unpin(w, 1)}},
        ThreadProgram{"pinner-b", {Pin(w, 1), Unpin(w, 1)}},
        ThreadProgram{"pressure", {Get(w, 2, 8), Get(w, 3, 8)}},
    };
    inst.check_step = [w] { CheckStep(*w); };
    return inst;
  });
  EXPECT_GT(r.schedules, 0u);
  EXPECT_EQ(r.deadlocks, 0u);
}

}  // namespace
}  // namespace stj
