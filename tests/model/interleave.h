#pragma once

// Deterministic exhaustive-interleaving model checker (DESIGN.md §16).
//
// The checker enumerates *every* interleaving of a small set of thread
// programs, where a program is a fixed sequence of operations against a
// fresh "world" (the structure under test). Exploration is replay-based
// depth-first search over a stack of scheduling choices: each path rebuilds
// the world from scratch, replays the recorded choice prefix, then extends
// it; backtracking increments the deepest unexhausted choice. No real
// threads are involved — every operation runs to completion on the
// checker's own thread.
//
// Why op-granularity interleaving is sound here: the structures this
// harness targets (BoundedMpmcQueue, PinnedByteLruCache) serialize every
// public operation under one mutex. Any real execution is therefore
// equivalent to *some* total order of complete operations — exactly the
// orders this checker enumerates. Blocking operations are modeled with an
// `enabled` predicate mirroring the condvar predicate (e.g. Pop is enabled
// iff `aborted || closed || size > 0`); scheduling a blocking op only when
// enabled reproduces "the wait returned" without ever sleeping. A state
// where unfinished programs exist but nothing is enabled is a *deadlock* —
// precisely a real execution whose waiters can never be woken — and is
// counted so tests can assert deadlock-freedom (that assertion IS the
// "Abort/Close wakes all waiters" property).
//
// Keep scenarios small (2-3 threads, 2-4 ops each): the schedule count is
// multinomial in the op counts, and the point is exhaustiveness, not scale.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/util/check.h"

namespace stj::model {

/// One atomic step of a thread program. `enabled` models a blocking
/// operation's wake condition (null = always enabled); `run` performs the
/// complete operation and must not block.
struct Op {
  std::string name;
  std::function<bool()> enabled;  ///< Null means always enabled.
  std::function<void()> run;
};

/// A thread: an ordered sequence of ops, executed at most one step per
/// scheduling choice.
struct ThreadProgram {
  std::string name;
  std::vector<Op> ops;
};

/// One fresh instance of a scenario: the world (kept alive by the erased
/// pointer), the programs bound to it, and its invariant callbacks.
struct Instance {
  std::shared_ptr<void> world;          ///< Owns the structure under test.
  std::vector<ThreadProgram> threads;
  std::function<void()> check_step;     ///< After every op (may be null).
  std::function<void()> check_final;    ///< After each complete schedule
                                        ///< (may be null; skipped on
                                        ///< deadlocked paths).
};

struct ExploreResult {
  uint64_t schedules = 0;  ///< Complete (non-deadlocked) paths explored.
  uint64_t deadlocks = 0;  ///< Paths ending with pending-but-disabled ops.
  uint64_t steps = 0;      ///< Total ops executed across all paths.
};

/// Exhaustively explores every interleaving of the scenario produced by
/// \p make (called once per path — it must build a *fresh* world each
/// time; any state shared across calls breaks replay determinism).
/// \p max_paths is a runaway bound: exceeding it aborts via STJ_CHECK,
/// because an unexpectedly large schedule space means the scenario is not
/// the small exhaustive proof it claims to be.
inline ExploreResult ExploreAll(const std::function<Instance()>& make,
                                uint64_t max_paths = 1u << 20) {
  ExploreResult result;
  std::vector<size_t> prefix;  // Choice taken at step i (index into enabled).
  std::vector<size_t> widths;  // |enabled| observed at step i.

  for (;;) {
    STJ_CHECK_MSG(result.schedules + result.deadlocks < max_paths,
                  "model scenario exceeds the path bound; shrink it");
    Instance inst = make();
    std::vector<size_t> pc(inst.threads.size(), 0);
    widths.clear();
    bool deadlocked = false;

    for (size_t step = 0;; ++step) {
      // Enabled frontier: threads with a pending op whose wake condition
      // holds in the current world state.
      std::vector<size_t> enabled;
      bool pending = false;
      for (size_t t = 0; t < inst.threads.size(); ++t) {
        if (pc[t] >= inst.threads[t].ops.size()) continue;
        pending = true;
        const Op& op = inst.threads[t].ops[pc[t]];
        if (!op.enabled || op.enabled()) enabled.push_back(t);
      }
      if (!pending) break;  // Complete schedule.
      if (enabled.empty()) {
        deadlocked = true;
        break;
      }
      if (step == prefix.size()) prefix.push_back(0);
      STJ_CHECK_MSG(prefix[step] < enabled.size(),
                    "replay divergence: world evolution is not "
                    "deterministic under the recorded choices");
      widths.push_back(enabled.size());
      const size_t t = enabled[prefix[step]];
      inst.threads[t].ops[pc[t]].run();
      ++pc[t];
      ++result.steps;
      if (inst.check_step) inst.check_step();
    }

    if (deadlocked) {
      ++result.deadlocks;
    } else {
      ++result.schedules;
      if (inst.check_final) inst.check_final();
    }

    // Backtrack: drop exhausted tail choices, advance the deepest live one.
    STJ_CHECK_MSG(prefix.size() == widths.size(),
                  "replay divergence: path shorter than its choice prefix");
    while (!prefix.empty() && prefix.back() + 1 >= widths.back()) {
      prefix.pop_back();
      widths.pop_back();
    }
    if (prefix.empty()) return result;
    ++prefix.back();
  }
}

}  // namespace stj::model
