// Exhaustive interleaving checks for the BoundedMpmcQueue protocol
// (src/util/mpmc_queue.h, DESIGN.md §16).
//
// Each scenario enumerates EVERY schedule of small producer/consumer/closer
// programs and asserts the queue's documented invariants on each one:
//   - no lost batch after Close: everything successfully pushed before a
//     clean close is popped (or still drainable) — the executor's "drain
//     the remainder" contract;
//   - Abort wakes all: with an aborter in the mix, no schedule deadlocks
//     (the model's enabledness mirrors the condvar predicate, so a
//     deadlock here is literally a waiter no notify can reach);
//   - telemetry conservation: pushed/popped counters match the observed
//     operations, max_depth never exceeds capacity.
//
// The tripwire build (tests/model/tripwire, compiled with
// -DSTJ_MODEL_QUEUE_CORRUPT) makes Close() drop queued items; the
// "NoLostBatchAfterClose" scenario must fail there, proving the checker
// detects real protocol bugs rather than vacuously passing.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/mpmc_queue.h"
#include "tests/model/interleave.h"

namespace stj {
namespace {

using model::ExploreAll;
using model::ExploreResult;
using model::Instance;
using model::Op;
using model::ThreadProgram;

using Queue = BoundedMpmcQueue<int>;
using Outcome = Queue::PopOutcome;

/// World shared by the scenarios: the queue plus observation logs.
struct QueueWorld {
  explicit QueueWorld(size_t capacity) : q(capacity) {}

  Queue q;
  std::vector<int> pushed_ok;   ///< Values accepted by TryPush.
  std::vector<int> popped;      ///< Values handed out by Pop/TryPop.
  int closed_seen = 0;          ///< Pop returned kClosed.
  int aborted_seen = 0;         ///< Pop returned kAborted.
  int push_rejected = 0;        ///< TryPush returned false.
};

/// A blocking Pop as a model op: enabled exactly when the condvar predicate
/// would release the wait, so the scheduled call never blocks for real.
Op BlockingPop(const std::shared_ptr<QueueWorld>& w) {
  return Op{
      "Pop",
      [w] { return w->q.aborted() || w->q.closed() || w->q.size() > 0; },
      [w] {
        int v = 0;
        switch (w->q.Pop(&v)) {
          case Outcome::kItem:
            w->popped.push_back(v);
            break;
          case Outcome::kClosed:
            ++w->closed_seen;
            break;
          case Outcome::kAborted:
            ++w->aborted_seen;
            break;
        }
      }};
}

Op Push(const std::shared_ptr<QueueWorld>& w, int value) {
  return Op{"TryPush", nullptr, [w, value] {
              int item = value;
              if (w->q.TryPush(item)) {
                w->pushed_ok.push_back(value);
              } else {
                ++w->push_rejected;
              }
            }};
}

/// The executor's back-pressure discipline: a push that fails against a
/// full (or closed) queue helps drain one item instead of blocking, then
/// retries once. Exactly the TryPush-help-TryPush sequence of
/// batch_executor.cc's producer loop, shrunk to one op.
Op PushOrHelpDrain(const std::shared_ptr<QueueWorld>& w, int value) {
  return Op{"PushOrHelpDrain", nullptr, [w, value] {
              int item = value;
              if (w->q.TryPush(item)) {
                w->pushed_ok.push_back(value);
                return;
              }
              int helped = 0;
              if (w->q.TryPop(&helped)) w->popped.push_back(helped);
              if (w->q.TryPush(item)) {
                w->pushed_ok.push_back(value);
              } else {
                ++w->push_rejected;
              }
            }};
}

Op Close(const std::shared_ptr<QueueWorld>& w) {
  return Op{"Close", nullptr, [w] { w->q.Close(); }};
}

Op Abort(const std::shared_ptr<QueueWorld>& w) {
  return Op{"Abort", nullptr, [w] { w->q.Abort(); }};
}

/// Telemetry/structure invariant checked after every step of every path.
void CheckStep(const QueueWorld& w) {
  const QueueTelemetry t = w.q.Telemetry();
  ASSERT_EQ(t.pushed, w.pushed_ok.size());
  ASSERT_EQ(t.popped, w.popped.size());
  ASSERT_LE(t.max_depth, w.q.capacity());
  ASSERT_LE(w.q.size(), w.q.capacity());
}

/// n! / (k1! k2! ...) — the exact number of interleavings of programs with
/// the given op counts when every op is always enabled.
uint64_t Multinomial(const std::vector<uint64_t>& counts) {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  uint64_t result = 1;
  uint64_t step = 1;
  for (uint64_t c : counts) {
    for (uint64_t i = 1; i <= c; ++i) result = result * step++ / i;
  }
  return result;
}

// ---------------------------------------------------------------------------

// One producer pushing two items then closing; one consumer issuing three
// blocking pops. Every successfully pushed item must come out, and the
// consumer's surplus pop must observe kClosed — on every schedule.
TEST(QueueModel, NoLostBatchAfterClose) {
  const ExploreResult r = ExploreAll([] {
    auto w = std::make_shared<QueueWorld>(2);
    Instance inst;
    inst.world = w;
    inst.threads = {
        ThreadProgram{"producer", {Push(w, 1), Push(w, 2), Close(w)}},
        ThreadProgram{"consumer",
                      {BlockingPop(w), BlockingPop(w), BlockingPop(w)}},
    };
    inst.check_step = [w] { CheckStep(*w); };
    inst.check_final = [w] {
      // Capacity 2 never rejects two pushes, so a clean close must hand
      // every item to the consumer: the "no lost batch" invariant the
      // corrupt build violates.
      ASSERT_EQ(w->push_rejected, 0);
      std::vector<int> pushed = w->pushed_ok;
      std::vector<int> popped = w->popped;
      std::sort(pushed.begin(), pushed.end());
      std::sort(popped.begin(), popped.end());
      ASSERT_EQ(popped, pushed) << "item pushed before Close was lost";
      ASSERT_EQ(w->closed_seen, 1);
      ASSERT_EQ(w->aborted_seen, 0);
    };
    return inst;
  });
  EXPECT_GT(r.schedules, 0u);
  EXPECT_EQ(r.deadlocks, 0u) << "a consumer waited through a drained close";
}

// Abort racing Close racing a consumer: whatever the order, no waiter is
// left stranded (deadlocks == 0 is the wake-all property) and the abort is
// sticky — once any pop observes kAborted, every later pop does too.
TEST(QueueModel, AbortRacingCloseWakesAllWaiters) {
  const ExploreResult r = ExploreAll([] {
    auto w = std::make_shared<QueueWorld>(2);
    auto sticky = std::make_shared<std::vector<Outcome>>();
    auto record_pop = [w, sticky] {
      int v = 0;
      const Outcome o = w->q.Pop(&v);
      sticky->push_back(o);
      if (o == Outcome::kItem) w->popped.push_back(v);
      if (o == Outcome::kClosed) ++w->closed_seen;
      if (o == Outcome::kAborted) ++w->aborted_seen;
    };
    auto pop_enabled = [w] {
      return w->q.aborted() || w->q.closed() || w->q.size() > 0;
    };
    Instance inst;
    inst.world = w;
    inst.threads = {
        ThreadProgram{"producer", {Push(w, 7)}},
        ThreadProgram{"closer", {Close(w)}},
        ThreadProgram{"aborter", {Abort(w)}},
        ThreadProgram{"consumer",
                      {Op{"Pop", pop_enabled, record_pop},
                       Op{"Pop", pop_enabled, record_pop}}},
    };
    inst.check_step = [w] { CheckStep(*w); };
    inst.check_final = [w, sticky] {
      // Abort ran on every path, so the queue ends aborted and empty.
      ASSERT_TRUE(w->q.aborted());
      ASSERT_EQ(w->q.size(), 0u);
      // Sticky: after the first kAborted outcome, only kAborted follows.
      bool aborted = false;
      for (const Outcome o : *sticky) {
        if (aborted) {
          ASSERT_EQ(o, Outcome::kAborted);
        }
        if (o == Outcome::kAborted) aborted = true;
      }
    };
    return inst;
  });
  EXPECT_GT(r.schedules, 0u);
  EXPECT_EQ(r.deadlocks, 0u) << "Abort/Close left a blocked consumer behind";
}

// TryPush against a full queue that gets closed: the help-drain discipline
// must never lose the drained item, and after Close the retry-push must be
// rejected (closed is sticky for producers).
TEST(QueueModel, HelpDrainOnFullClosedQueue) {
  const ExploreResult r = ExploreAll([] {
    auto w = std::make_shared<QueueWorld>(1);  // Full after one push.
    Instance inst;
    inst.world = w;
    inst.threads = {
        ThreadProgram{"producer",
                      {Push(w, 1), PushOrHelpDrain(w, 2), Close(w)}},
        ThreadProgram{"closer-racer", {Close(w)}},
        ThreadProgram{"consumer", {BlockingPop(w), BlockingPop(w)}},
    };
    inst.check_step = [w] { CheckStep(*w); };
    inst.check_final = [w] {
      // Conservation: every accepted item was popped, helped-drained, or is
      // still resident (clean close never drops).
      int drained = 0;
      int v = 0;
      while (w->q.TryPop(&v)) {
        ++drained;
      }
      ASSERT_EQ(w->pushed_ok.size(), w->popped.size() + drained)
          << "an accepted item vanished";
      ASSERT_TRUE(w->q.closed());
    };
    return inst;
  });
  EXPECT_GT(r.schedules, 0u);
  EXPECT_EQ(r.deadlocks, 0u);
}

// Two producers of always-enabled ops: the explored schedule count must be
// exactly the multinomial 4!/(2!2!) = 6 — the checker really enumerates
// every interleaving, no more, no fewer.
TEST(QueueModel, EnumeratesExactlyTheMultinomialScheduleCount) {
  const ExploreResult r = ExploreAll([] {
    auto w = std::make_shared<QueueWorld>(4);
    Instance inst;
    inst.world = w;
    inst.threads = {
        ThreadProgram{"p1", {Push(w, 1), Push(w, 2)}},
        ThreadProgram{"p2", {Push(w, 3), Push(w, 4)}},
    };
    inst.check_step = [w] { CheckStep(*w); };
    return inst;
  });
  EXPECT_EQ(r.schedules, Multinomial({2, 2}));
  EXPECT_EQ(r.deadlocks, 0u);
  EXPECT_EQ(r.steps, Multinomial({2, 2}) * 4);
}

// Three-thread version of the count check: 5!/(2!2!1!) = 30 schedules; the
// closer makes later pops of a hypothetical consumer wake — here it just
// stresses the frontier bookkeeping with a third always-enabled program.
TEST(QueueModel, MultinomialCountWithThreeThreads) {
  const ExploreResult r = ExploreAll([] {
    auto w = std::make_shared<QueueWorld>(8);
    Instance inst;
    inst.world = w;
    inst.threads = {
        ThreadProgram{"p1", {Push(w, 1), Push(w, 2)}},
        ThreadProgram{"p2", {Push(w, 3), Push(w, 4)}},
        ThreadProgram{"closer", {Close(w)}},
    };
    inst.check_step = [w] { CheckStep(*w); };
    return inst;
  });
  EXPECT_EQ(r.schedules, Multinomial({2, 2, 1}));
  EXPECT_EQ(r.deadlocks, 0u);
}

// A consumer with no producer and no closer CAN deadlock — the checker must
// report it rather than hang or miss it. This is the negative control for
// the enabledness machinery (and why deadlocks==0 above is meaningful).
TEST(QueueModel, ReportsDeadlockWhenNoWakeIsPossible) {
  const ExploreResult r = ExploreAll([] {
    auto w = std::make_shared<QueueWorld>(2);
    Instance inst;
    inst.world = w;
    inst.threads = {
        ThreadProgram{"producer", {Push(w, 1)}},
        ThreadProgram{"consumer", {BlockingPop(w), BlockingPop(w)}},
    };
    inst.check_step = [w] { CheckStep(*w); };
    return inst;
  });
  // Every path ends with the consumer's second Pop waiting on a queue that
  // is empty, unclosed, and unaborted.
  EXPECT_EQ(r.schedules, 0u);
  EXPECT_GT(r.deadlocks, 0u);
}

}  // namespace
}  // namespace stj
