#include <gtest/gtest.h>

#include <algorithm>

#include "src/datasets/scenarios.h"
#include "src/join/mbr_join.h"
#include "src/topology/parallel.h"

// Fast smoke tests for the parallel hot stages (ctest label: perf_smoke).
// They assert the one property the perf work must never trade away — the
// parallel paths return exactly what the single-threaded paths return — on
// a scenario small enough to run inside sanitizer presets. The tsan preset
// picks these up via its name filter, so every data-race-prone code path
// here is exercised under TSan on each sanitize run.

namespace stj {
namespace {

class PerfSmoke : public ::testing::Test {
 protected:
  PerfSmoke() {
    ScenarioOptions options;
    options.scale = 0.02;
    options.grid_order = 10;
    scenario_ = BuildScenario("OLE-OPE", options);
  }
  ScenarioData scenario_;
};

TEST_F(PerfSmoke, ParallelFilterMatchesSingleThread) {
  const std::vector<Box> r = scenario_.r.Mbrs();
  const std::vector<Box> s = scenario_.s.Mbrs();
  auto want = MbrJoin::JoinBruteForce(r, s);
  std::sort(want.begin(), want.end());
  ASSERT_FALSE(want.empty());
  for (const bool deterministic : {false, true}) {
    MbrJoin::Options options;
    options.num_threads = 4;
    options.deterministic = deterministic;
    auto got = MbrJoin::Join(r, s, options);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want) << "deterministic=" << deterministic;
  }
}

TEST_F(PerfSmoke, ParallelFindRelationMatchesSingleThread) {
  ASSERT_FALSE(scenario_.candidates.empty());
  const ParallelJoinResult serial = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      /*num_threads=*/1);
  const ParallelJoinResult parallel = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      /*num_threads=*/4);
  EXPECT_EQ(serial.relations, parallel.relations);
  EXPECT_EQ(serial.stats.refined, parallel.stats.refined);
}

TEST_F(PerfSmoke, PreparedCacheMatchesUncachedRefinement) {
  // The prepared-geometry cache is a refinement-only perf layer; this pins
  // its no-result-change contract under the sanitizer presets (asan/ubsan
  // see the open-addressed table, LRU relinking, and eviction churn; the
  // 1-byte budget maximises that churn).
  ASSERT_FALSE(scenario_.candidates.empty());
  const JoinOptions uncached{.num_threads = 1,
                             .time_stages = false,
                             .prepared_cache_bytes = 0};
  const ParallelJoinResult reference = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      uncached);
  for (const size_t budget : {size_t{1}, kDefaultPreparedCacheBytes}) {
    for (const unsigned threads : {1u, 4u}) {
      const JoinOptions cached{.num_threads = threads,
                               .time_stages = false,
                               .prepared_cache_bytes = budget};
      const ParallelJoinResult run = ParallelFindRelation(
          Method::kPC, scenario_.RView(), scenario_.SView(),
          scenario_.candidates, cached);
      EXPECT_EQ(run.relations, reference.relations)
          << "budget=" << budget << " threads=" << threads;
      EXPECT_EQ(run.stats.refined, reference.stats.refined)
          << "budget=" << budget << " threads=" << threads;
    }
  }
}

TEST_F(PerfSmoke, ParallelRelateMatchesSingleThread) {
  const ParallelRelateResult serial = ParallelRelate(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      de9im::Relation::kIntersects, /*num_threads=*/1);
  const ParallelRelateResult parallel = ParallelRelate(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      de9im::Relation::kIntersects, /*num_threads=*/4);
  EXPECT_EQ(serial.matches, parallel.matches);
}

}  // namespace
}  // namespace stj
