// Version-3 ("APRB", blocked codec) APRIL file robustness: round trips into
// both store forms, transparent decode through the flat loader, per-record
// corruption isolation, and the codec_corrupt taxonomy — records whose frame
// checksum verifies but whose blocked payload fails deep validation.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/raster/april.h"
#include "src/raster/april_compressed.h"
#include "src/raster/april_io.h"
#include "src/util/rng.h"
#include "tests/robustness/corrupter.h"
#include "tests/test_support.h"

namespace stj {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// Mirrors the writer's frame checksum (april_io.cpp).
uint64_t Fnv1a64(const char* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

// Offsets of the record frames (shared v2/v3 frame layout), plus the end
// offset of the last frame.
std::vector<size_t> FrameOffsets(const std::string& bytes, size_t count) {
  constexpr size_t kHeaderSize = 4 + 4 + 8;  // magic, u32 version, u64 count
  std::vector<size_t> offsets;
  size_t off = kHeaderSize;
  for (size_t i = 0; i < count; ++i) {
    offsets.push_back(off);
    uint64_t payload_size = 0;
    EXPECT_LE(off + 16, bytes.size());
    std::memcpy(&payload_size, bytes.data() + off, sizeof payload_size);
    off += 16 + payload_size;  // size, checksum, payload
  }
  offsets.push_back(off);
  return offsets;
}

// Flips one payload byte of frame \p record and REPAIRS the frame checksum,
// so the damage is invisible to the integrity layer and only the codec
// validation can catch it.
std::string WithCodecCorruptRecord(const std::string& bytes,
                                   const std::vector<size_t>& offsets,
                                   size_t record, size_t payload_byte) {
  std::string damaged = bytes;
  const size_t frame = offsets[record];
  uint64_t payload_size = 0;
  std::memcpy(&payload_size, damaged.data() + frame, sizeof payload_size);
  EXPECT_LT(payload_byte, payload_size);
  const size_t payload_begin = frame + 16;
  damaged[payload_begin + payload_byte] = static_cast<char>(
      ~static_cast<unsigned char>(damaged[payload_begin + payload_byte]));
  const uint64_t checksum = Fnv1a64(damaged.data() + payload_begin,
                                    static_cast<size_t>(payload_size));
  std::memcpy(damaged.data() + frame + 8, &checksum, sizeof checksum);
  return damaged;
}

class AprilBlockedTest : public ::testing::Test {
 protected:
  AprilBlockedTest() {
    Rng rng(73);
    const RasterGrid grid(Box::Of(Point{0, 0}, Point{100, 100}), 9);
    const AprilBuilder builder(&grid);
    std::vector<AprilApproximation> approximations;
    for (int i = 0; i < 8; ++i) {
      approximations.push_back(builder.Build(test::RandomBlob(
          &rng, Point{rng.Uniform(10, 90), rng.Uniform(10, 90)},
          rng.LogUniform(2.0, 15.0), 48, 0.25)));
    }
    flat_ = AprilStore::FromApproximations(approximations);
    store_ = CompressedAprilStore::FromStore(flat_);
  }

  // The saved v3 file's bytes.
  std::string SavedBytes() {
    const std::string path = TempPath("april_blocked_scratch.bin");
    EXPECT_TRUE(SaveAprilStoreBlocked(path, store_));
    std::string bytes = test::ReadFileBytes(path);
    std::remove(path.c_str());
    return bytes;
  }

  AprilStore flat_;
  CompressedAprilStore store_;
};

TEST_F(AprilBlockedTest, RoundTripsIntoCompressedStore) {
  const std::string path = TempPath("april_blocked_rt.bin");
  ASSERT_TRUE(SaveAprilStoreBlocked(path, store_));

  CompressedAprilStore loaded;
  AprilLoadReport report;
  const Status status = LoadCompressedAprilStore(path, &loaded, &report);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(report.version, 3u);
  EXPECT_TRUE(report.compressed);
  EXPECT_FALSE(report.Degraded());
  EXPECT_EQ(report.codec_corrupt, 0u);
  EXPECT_TRUE(loaded == store_);
  loaded.ValidateInvariants();
  std::remove(path.c_str());
}

TEST_F(AprilBlockedTest, FlatLoaderDecodesVersion3Transparently) {
  const std::string path = TempPath("april_blocked_flat.bin");
  ASSERT_TRUE(SaveAprilStoreBlocked(path, store_));

  AprilStore loaded;
  AprilLoadReport report;
  const Status status = LoadAprilStore(path, &loaded, &report);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(report.version, 3u);
  EXPECT_FALSE(report.Degraded());
  ASSERT_EQ(loaded.Count(), flat_.Count());
  for (size_t i = 0; i < flat_.Count(); ++i) {
    EXPECT_TRUE(loaded.Conservative(i) == flat_.Conservative(i)) << i;
    EXPECT_TRUE(loaded.Progressive(i) == flat_.Progressive(i)) << i;
  }
  std::remove(path.c_str());
}

TEST_F(AprilBlockedTest, FromStoreAndDecodeRecordAreInverse) {
  ASSERT_EQ(store_.Count(), flat_.Count());
  std::vector<CellInterval> c;
  std::vector<CellInterval> p;
  for (size_t i = 0; i < store_.Count(); ++i) {
    ASSERT_TRUE(store_.DecodeRecord(i, &c, &p)) << i;
    EXPECT_TRUE(IntervalView(c.data(), c.size()) == flat_.Conservative(i))
        << i;
    EXPECT_TRUE(IntervalView(p.data(), p.size()) == flat_.Progressive(i))
        << i;
    EXPECT_EQ(store_.DeepValidateRecord(i), "") << i;
  }
}

TEST_F(AprilBlockedTest, ChecksumCorruptionIsolatesOneRecord) {
  const std::string bytes = SavedBytes();
  const std::vector<size_t> offsets = FrameOffsets(bytes, store_.Count());
  const std::string damaged =
      test::WithFlippedByte(bytes, offsets[2] + 16 + 3);

  const std::string path = TempPath("april_blocked_crc.bin");
  test::WriteFileBytes(path, damaged);
  for (const bool via_compressed : {false, true}) {
    AprilLoadReport report;
    size_t count = 0;
    std::vector<bool> usable;
    if (via_compressed) {
      CompressedAprilStore loaded;
      ASSERT_TRUE(LoadCompressedAprilStore(path, &loaded, &report).ok());
      count = loaded.Count();
      for (size_t i = 0; i < count; ++i) usable.push_back(loaded.Usable(i));
    } else {
      AprilStore loaded;
      ASSERT_TRUE(LoadAprilStore(path, &loaded, &report).ok());
      count = loaded.Count();
      for (size_t i = 0; i < count; ++i) usable.push_back(loaded.Usable(i));
    }
    EXPECT_EQ(report.corrupt, 1u) << via_compressed;
    EXPECT_EQ(report.codec_corrupt, 0u) << via_compressed;
    ASSERT_EQ(report.corrupt_indices, std::vector<uint64_t>{2});
    ASSERT_EQ(count, store_.Count());
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(usable[i], i != 2) << via_compressed << " record " << i;
    }
  }
  std::remove(path.c_str());
}

TEST_F(AprilBlockedTest, CodecCorruptionWithValidChecksumIsCaught) {
  // The adversarial case the checksum cannot see: payload damaged AND the
  // frame checksum recomputed. Deep codec validation must catch it, count it
  // separately from bit-rot corruption, and isolate the record.
  const std::string bytes = SavedBytes();
  const std::vector<size_t> offsets = FrameOffsets(bytes, store_.Count());
  // Damage the final payload byte: it belongs to the last block's varint
  // stream, where any flip breaks the header-pinned block endpoint (data
  // bits change the delta sum, the continuation bit truncates the varint).
  uint64_t payload_size = 0;
  std::memcpy(&payload_size, bytes.data() + offsets[3], sizeof payload_size);
  const std::string damaged = WithCodecCorruptRecord(
      bytes, offsets, /*record=*/3,
      /*payload_byte=*/static_cast<size_t>(payload_size) - 1);

  const std::string path = TempPath("april_blocked_codec.bin");
  test::WriteFileBytes(path, damaged);
  for (const bool via_compressed : {false, true}) {
    AprilLoadReport report;
    size_t count = 0;
    std::vector<bool> usable;
    if (via_compressed) {
      CompressedAprilStore loaded;
      ASSERT_TRUE(LoadCompressedAprilStore(path, &loaded, &report).ok());
      count = loaded.Count();
      for (size_t i = 0; i < count; ++i) usable.push_back(loaded.Usable(i));
    } else {
      AprilStore loaded;
      ASSERT_TRUE(LoadAprilStore(path, &loaded, &report).ok());
      count = loaded.Count();
      for (size_t i = 0; i < count; ++i) usable.push_back(loaded.Usable(i));
    }
    EXPECT_EQ(report.corrupt, 0u) << via_compressed;
    EXPECT_EQ(report.codec_corrupt, 1u) << via_compressed;
    EXPECT_TRUE(report.Degraded()) << via_compressed;
    ASSERT_EQ(report.corrupt_indices, std::vector<uint64_t>{3});
    ASSERT_EQ(count, store_.Count());
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(usable[i], i != 3) << via_compressed << " record " << i;
    }
  }
  std::remove(path.c_str());
}

TEST_F(AprilBlockedTest, CodecFlipSweepNeverEscapesTheRecord) {
  // Sweep a checksum-repaired flip across every payload byte of one record.
  // Detection is not guaranteed for every position (a flip in a skip
  // header's first_cell varint can shift one block consistently — that is
  // what the frame checksum exists for), but corruption must never escape
  // the record: either it is flagged codec-corrupt and isolated, or the
  // record still loads as a self-consistent canonical list. All other
  // records must come through untouched either way.
  const std::string bytes = SavedBytes();
  const std::vector<size_t> offsets = FrameOffsets(bytes, store_.Count());
  uint64_t payload_size = 0;
  std::memcpy(&payload_size, bytes.data() + offsets[1], sizeof payload_size);
  const std::string path = TempPath("april_blocked_sweep.bin");
  size_t detected = 0;
  for (size_t b = 0; b < payload_size; ++b) {
    test::WriteFileBytes(path, WithCodecCorruptRecord(bytes, offsets, 1, b));
    AprilStore loaded;
    AprilLoadReport report;
    ASSERT_TRUE(LoadAprilStore(path, &loaded, &report).ok()) << "flip @" << b;
    ASSERT_EQ(loaded.Count(), store_.Count()) << "flip @" << b;
    EXPECT_EQ(report.corrupt, 0u) << "flip @" << b;
    if (report.codec_corrupt != 0) {
      ++detected;
      EXPECT_EQ(report.codec_corrupt, 1u) << "flip @" << b;
      EXPECT_FALSE(loaded.Usable(1)) << "flip @" << b;
    } else {
      // Undetected flips must still yield a canonical (if different) list.
      ASSERT_TRUE(loaded.Usable(1)) << "flip @" << b;
      const IntervalView survived = loaded.Conservative(1);
      for (size_t k = 0; k < survived.Size(); ++k) {
        EXPECT_LT(survived[k].begin, survived[k].end) << "flip @" << b;
        if (k > 0) {
          EXPECT_LT(survived[k - 1].end, survived[k].begin) << "flip @" << b;
        }
      }
    }
    // Every other record survives untouched.
    for (size_t i = 0; i < loaded.Count(); ++i) {
      if (i == 1) continue;
      EXPECT_TRUE(loaded.Conservative(i) == flat_.Conservative(i))
          << "flip @" << b << " record " << i;
    }
  }
  // The overwhelming majority of positions are block payload bytes, where
  // the pinned block endpoints make any flip detectable.
  EXPECT_GT(detected, payload_size / 2);
  std::remove(path.c_str());
}

TEST_F(AprilBlockedTest, TruncationKeepsVerifiedPrefix) {
  const std::string bytes = SavedBytes();
  const std::vector<size_t> offsets = FrameOffsets(bytes, store_.Count());
  ASSERT_EQ(offsets.back(), bytes.size());
  const std::string path = TempPath("april_blocked_trunc.bin");
  for (size_t k = 0; k < store_.Count(); ++k) {
    test::WriteFileBytes(path, test::TruncatedTo(bytes, offsets[k]));
    CompressedAprilStore loaded;
    AprilLoadReport report;
    ASSERT_TRUE(LoadCompressedAprilStore(path, &loaded, &report).ok());
    EXPECT_TRUE(report.truncated);
    EXPECT_EQ(report.loaded, k);
    ASSERT_EQ(loaded.Count(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_TRUE(loaded.Usable(i)) << i;
      EXPECT_EQ(loaded.DeepValidateRecord(i), "") << i;
    }
  }
  std::remove(path.c_str());
}

TEST_F(AprilBlockedTest, CompressedLoaderRejectsVersion2Files) {
  std::vector<AprilApproximation> approximations(2);
  approximations[0].conservative = IntervalList::FromCells({1, 2, 3});
  const std::string path = TempPath("april_blocked_v2.bin");
  ASSERT_TRUE(SaveAprilFile(path, approximations));
  CompressedAprilStore loaded;
  const Status status = LoadCompressedAprilStore(path, &loaded, nullptr);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(AprilBlockedTest, BlockedFileIsSmallerThanRaw) {
  const std::string raw_path = TempPath("april_blocked_raw.bin");
  const std::string blocked_path = TempPath("april_blocked_small.bin");
  ASSERT_TRUE(SaveAprilStore(raw_path, flat_));
  ASSERT_TRUE(SaveAprilStoreBlocked(blocked_path, store_));
  const std::string raw = test::ReadFileBytes(raw_path);
  const std::string blocked = test::ReadFileBytes(blocked_path);
  EXPECT_LT(blocked.size() * 2, raw.size())
      << "blocked " << blocked.size() << " vs raw " << raw.size();
  std::remove(raw_path.c_str());
  std::remove(blocked_path.c_str());
}

TEST(AprilBlocked, EmptyAndPlaceholderRecordsRoundTrip) {
  CompressedAprilStore store;
  store.AppendEncoded(IntervalView(), IntervalView());  // fully empty record
  store.AppendCorruptPlaceholder();
  IntervalList c = IntervalList::FromCells({5, 6, 7, 20});
  store.AppendEncoded(c, IntervalView());  // empty P list

  const std::string path =
      std::string(::testing::TempDir()) + "/april_blocked_empty.bin";
  ASSERT_TRUE(SaveAprilStoreBlocked(path, store));
  CompressedAprilStore loaded;
  AprilLoadReport report;
  ASSERT_TRUE(LoadCompressedAprilStore(path, &loaded, &report).ok());
  ASSERT_EQ(loaded.Count(), 3u);
  EXPECT_TRUE(loaded.Usable(0));
  EXPECT_TRUE(loaded.Conservative(0).Empty());
  // Placeholders are written as empty records, which load as usable empties
  // (the v2 writers behave the same way — the usable flag is not persisted).
  EXPECT_TRUE(loaded.Conservative(1).Empty());
  EXPECT_TRUE(loaded.Usable(2));
  std::vector<CellInterval> flat_c;
  std::vector<CellInterval> flat_p;
  ASSERT_TRUE(loaded.DecodeRecord(2, &flat_c, &flat_p));
  EXPECT_TRUE(IntervalView(flat_c.data(), flat_c.size()) == IntervalView(c));
  EXPECT_TRUE(flat_p.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace stj
