#include "src/raster/april_io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "src/util/rng.h"
#include "tests/test_support.h"

namespace stj {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(AprilIo, RoundTripPreservesLists) {
  Rng rng(41);
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{100, 100}), 8);
  const AprilBuilder builder(&grid);
  std::vector<AprilApproximation> originals;
  for (int i = 0; i < 20; ++i) {
    originals.push_back(builder.Build(test::RandomBlob(
        &rng, Point{rng.Uniform(10, 90), rng.Uniform(10, 90)},
        rng.LogUniform(0.5, 8.0), 32, 0.2)));
  }
  const std::string path = TempPath("april_roundtrip.bin");
  ASSERT_TRUE(SaveAprilFile(path, originals));

  std::vector<AprilApproximation> loaded;
  ASSERT_TRUE(LoadAprilFile(path, &loaded));
  ASSERT_EQ(loaded.size(), originals.size());
  for (size_t i = 0; i < originals.size(); ++i) {
    EXPECT_EQ(loaded[i].conservative, originals[i].conservative) << i;
    EXPECT_EQ(loaded[i].progressive, originals[i].progressive) << i;
  }
  std::remove(path.c_str());
}

TEST(AprilIo, EmptyCollection) {
  const std::string path = TempPath("april_empty.bin");
  ASSERT_TRUE(SaveAprilFile(path, {}));
  std::vector<AprilApproximation> loaded = {AprilApproximation{}};
  ASSERT_TRUE(LoadAprilFile(path, &loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(AprilIo, RejectsMissingFile) {
  std::vector<AprilApproximation> loaded;
  EXPECT_FALSE(LoadAprilFile(TempPath("does_not_exist.bin"), &loaded));
}

TEST(AprilIo, RejectsBadMagic) {
  const std::string path = TempPath("april_badmagic.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("NOPE", 1, 4, f);
  std::fclose(f);
  std::vector<AprilApproximation> loaded;
  EXPECT_FALSE(LoadAprilFile(path, &loaded));
  std::remove(path.c_str());
}

TEST(AprilIo, RejectsTruncatedFile) {
  Rng rng(43);
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{10, 10}), 6);
  const AprilBuilder builder(&grid);
  const std::vector<AprilApproximation> originals = {
      builder.Build(test::Square(1, 1, 8, 8))};
  const std::string path = TempPath("april_truncated.bin");
  ASSERT_TRUE(SaveAprilFile(path, originals));
  // Truncate the file to half its size.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(::truncate(path.c_str(), size / 2), 0);
  std::vector<AprilApproximation> loaded;
  EXPECT_FALSE(LoadAprilFile(path, &loaded));
  std::remove(path.c_str());
}

TEST(AprilIo, CompressedRoundTripPreservesLists) {
  Rng rng(45);
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{100, 100}), 10);
  const AprilBuilder builder(&grid);
  std::vector<AprilApproximation> originals;
  for (int i = 0; i < 15; ++i) {
    originals.push_back(builder.Build(test::RandomBlob(
        &rng, Point{rng.Uniform(10, 90), rng.Uniform(10, 90)},
        rng.LogUniform(1.0, 12.0), 64, 0.2)));
  }
  const std::string path = TempPath("april_compressed.bin");
  ASSERT_TRUE(SaveAprilFileCompressed(path, originals));

  std::vector<AprilApproximation> loaded;
  ASSERT_TRUE(LoadAprilFile(path, &loaded));
  ASSERT_EQ(loaded.size(), originals.size());
  for (size_t i = 0; i < originals.size(); ++i) {
    EXPECT_EQ(loaded[i].conservative, originals[i].conservative) << i;
    EXPECT_EQ(loaded[i].progressive, originals[i].progressive) << i;
  }
  std::remove(path.c_str());
}

TEST(AprilIo, CompressedFormatIsSubstantiallySmaller) {
  Rng rng(47);
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{100, 100}), 12);
  const AprilBuilder builder(&grid);
  std::vector<AprilApproximation> originals;
  for (int i = 0; i < 10; ++i) {
    originals.push_back(builder.Build(test::RandomBlob(
        &rng, Point{rng.Uniform(20, 80), rng.Uniform(20, 80)}, 10.0, 128)));
  }
  const std::string raw_path = TempPath("april_raw_size.bin");
  const std::string compressed_path = TempPath("april_comp_size.bin");
  ASSERT_TRUE(SaveAprilFile(raw_path, originals));
  ASSERT_TRUE(SaveAprilFileCompressed(compressed_path, originals));
  auto file_size = [](const std::string& p) {
    std::FILE* f = std::fopen(p.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    return size;
  };
  const long raw = file_size(raw_path);
  const long compressed = file_size(compressed_path);
  EXPECT_LT(compressed * 3, raw)
      << "compressed " << compressed << " vs raw " << raw;
  std::remove(raw_path.c_str());
  std::remove(compressed_path.c_str());
}

TEST(AprilIo, CompressedEmptyListsRoundTrip) {
  // Slivers can have empty P lists; the compressed format must keep them.
  std::vector<AprilApproximation> originals(2);
  originals[0].conservative = IntervalList::FromCells({1, 2, 3, 99});
  const std::string path = TempPath("april_comp_empty.bin");
  ASSERT_TRUE(SaveAprilFileCompressed(path, originals));
  std::vector<AprilApproximation> loaded;
  ASSERT_TRUE(LoadAprilFile(path, &loaded));
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].conservative, originals[0].conservative);
  EXPECT_TRUE(loaded[0].progressive.Empty());
  EXPECT_TRUE(loaded[1].conservative.Empty());
  std::remove(path.c_str());
}

TEST(AprilIo, DetailedReportOnHealthyFile) {
  Rng rng(49);
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{50, 50}), 7);
  const AprilBuilder builder(&grid);
  std::vector<AprilApproximation> originals;
  for (int i = 0; i < 5; ++i) {
    originals.push_back(builder.Build(test::RandomBlob(
        &rng, Point{rng.Uniform(10, 40), rng.Uniform(10, 40)}, 4.0, 24)));
  }
  for (const bool compressed : {false, true}) {
    const std::string path = TempPath("april_detailed.bin");
    ASSERT_TRUE(compressed ? SaveAprilFileCompressed(path, originals)
                           : SaveAprilFile(path, originals));
    std::vector<AprilApproximation> loaded;
    AprilLoadReport report;
    const Status status = LoadAprilFileDetailed(path, &loaded, &report);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(report.version, 2u);
    EXPECT_EQ(report.compressed, compressed);
    EXPECT_EQ(report.declared_count, originals.size());
    EXPECT_EQ(report.loaded, originals.size());
    EXPECT_EQ(report.corrupt, 0u);
    EXPECT_FALSE(report.truncated);
    EXPECT_FALSE(report.Degraded());
    EXPECT_TRUE(report.corrupt_indices.empty());
    for (const AprilApproximation& a : loaded) EXPECT_TRUE(a.usable);
    std::remove(path.c_str());
  }
}

TEST(AprilIo, MissingFileStatusNamesIt) {
  std::vector<AprilApproximation> loaded;
  const std::string path = TempPath("absent.april");
  const Status status = LoadAprilFileDetailed(path, &loaded, nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.file(), path);
}

TEST(AprilIo, RejectsNonCanonicalLists) {
  // Hand-craft a file whose intervals overlap.
  const std::string path = TempPath("april_noncanonical.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("APRL", 1, 4, f);
  const uint32_t version = 1;
  std::fwrite(&version, sizeof version, 1, f);
  const uint64_t count = 1;
  std::fwrite(&count, sizeof count, 1, f);
  const uint64_t list_len = 2;
  const uint64_t intervals[] = {0, 10, 5, 20};  // overlapping
  std::fwrite(&list_len, sizeof list_len, 1, f);
  std::fwrite(intervals, sizeof(uint64_t), 4, f);
  std::fclose(f);
  std::vector<AprilApproximation> loaded;
  EXPECT_FALSE(LoadAprilFile(path, &loaded));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace stj
