// Tests for the arena-backed AprilStore: CSR layout and views, equivalence
// with the legacy vector<AprilApproximation> storage throughout the pipeline,
// and the one-pass corruption-isolating file loader.

#include "src/raster/april_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/datasets/scenarios.h"
#include "src/interval/interval_algebra.h"
#include "src/raster/april_io.h"
#include "src/topology/pipeline.h"
#include "src/util/rng.h"
#include "tests/robustness/corrupter.h"
#include "tests/test_support.h"

namespace stj {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<AprilApproximation> MakeApproximations(int count, uint64_t seed) {
  Rng rng(seed);
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{64, 64}), 7);
  const AprilBuilder builder(&grid);
  std::vector<AprilApproximation> out;
  for (int i = 0; i < count; ++i) {
    out.push_back(builder.Build(test::RandomBlob(
        &rng, Point{rng.Uniform(10, 54), rng.Uniform(10, 54)},
        rng.LogUniform(1.0, 8.0), 24, 0.3)));
  }
  return out;
}

TEST(AprilStore, ViewsMirrorTheSourceApproximations) {
  const std::vector<AprilApproximation> source = MakeApproximations(8, 17);
  const AprilStore store = AprilStore::FromApproximations(source);
  ASSERT_EQ(store.Count(), source.size());
  for (size_t i = 0; i < source.size(); ++i) {
    EXPECT_TRUE(store.Usable(i));
    EXPECT_TRUE(store.Conservative(i) == IntervalView(source[i].conservative))
        << i;
    EXPECT_TRUE(store.Progressive(i) == IntervalView(source[i].progressive))
        << i;
    // Views feed the interval algebra directly.
    EXPECT_TRUE(ListInside(store.View(i).progressive,
                           store.View(i).conservative))
        << i;
  }
  EXPECT_EQ(store.IntervalByteSize(),
            [&] {
              size_t total = 0;
              for (const AprilApproximation& a : source) total += a.ByteSize();
              return total;
            }());
}

TEST(AprilStore, EmptyAndClearedStores) {
  AprilStore store;
  EXPECT_TRUE(store.Empty());
  EXPECT_EQ(store.Count(), 0u);
  store.AppendRecord(IntervalView(), IntervalView());
  EXPECT_EQ(store.Count(), 1u);
  EXPECT_TRUE(store.Conservative(0).Empty());
  EXPECT_TRUE(store.Usable(0));
  store.AppendCorruptPlaceholder();
  EXPECT_FALSE(store.Usable(1));
  store.Clear();
  EXPECT_TRUE(store.Empty());
  EXPECT_TRUE(store == AprilStore());
}

TEST(AprilStore, SaveWritesTheSameBytesAsTheVectorPath) {
  const std::vector<AprilApproximation> source = MakeApproximations(6, 29);
  const AprilStore store = AprilStore::FromApproximations(source);
  const std::string vec_path = TempPath("store_vs_vec_a.bin");
  const std::string store_path = TempPath("store_vs_vec_b.bin");
  for (const bool compressed : {false, true}) {
    ASSERT_TRUE(compressed ? SaveAprilFileCompressed(vec_path, source)
                           : SaveAprilFile(vec_path, source));
    ASSERT_TRUE(compressed ? SaveAprilStoreCompressed(store_path, store)
                           : SaveAprilStore(store_path, store));
    EXPECT_EQ(test::ReadFileBytes(vec_path), test::ReadFileBytes(store_path))
        << (compressed ? "compressed" : "raw");
  }
  std::remove(vec_path.c_str());
  std::remove(store_path.c_str());
}

TEST(AprilStore, LoadRoundTripsBothEncodings) {
  const std::vector<AprilApproximation> source = MakeApproximations(7, 43);
  const AprilStore original = AprilStore::FromApproximations(source);
  const std::string path = TempPath("store_roundtrip.bin");
  for (const bool compressed : {false, true}) {
    ASSERT_TRUE(compressed ? SaveAprilStoreCompressed(path, original)
                           : SaveAprilStore(path, original));
    AprilStore loaded;
    AprilLoadReport report;
    ASSERT_TRUE(LoadAprilStore(path, &loaded, &report).ok());
    EXPECT_FALSE(report.Degraded());
    EXPECT_EQ(report.loaded, source.size());
    EXPECT_TRUE(loaded == original) << (compressed ? "compressed" : "raw");
  }
  std::remove(path.c_str());
}

TEST(AprilStore, CorruptRecordBecomesUnusablePlaceholder) {
  const std::vector<AprilApproximation> source = MakeApproximations(5, 61);
  const std::string path = TempPath("store_corrupt.bin");
  ASSERT_TRUE(SaveAprilFile(path, source));
  std::string bytes = test::ReadFileBytes(path);
  // Flip one payload byte of record 2. Frames: header is 16 bytes, each
  // record is 16 bytes of frame + payload.
  size_t off = 16;
  for (int skip = 0; skip < 2; ++skip) {
    uint64_t payload_size = 0;
    std::memcpy(&payload_size, bytes.data() + off, sizeof payload_size);
    off += 16 + payload_size;
  }
  ASSERT_LT(off + 20, bytes.size());
  bytes[off + 17] = static_cast<char>(bytes[off + 17] ^ 0x40);
  test::WriteFileBytes(path, bytes);

  AprilStore loaded;
  AprilLoadReport report;
  ASSERT_TRUE(LoadAprilStore(path, &loaded, &report).ok());
  ASSERT_EQ(loaded.Count(), source.size());
  EXPECT_TRUE(report.Degraded());
  EXPECT_EQ(report.corrupt, 1u);
  ASSERT_EQ(report.corrupt_indices.size(), 1u);
  EXPECT_EQ(report.corrupt_indices[0], 2u);
  for (size_t i = 0; i < loaded.Count(); ++i) {
    if (i == 2) {
      // The placeholder keeps later records index-aligned.
      EXPECT_FALSE(loaded.Usable(i));
      EXPECT_TRUE(loaded.Conservative(i).Empty());
      EXPECT_TRUE(loaded.Progressive(i).Empty());
    } else {
      EXPECT_TRUE(loaded.Usable(i)) << i;
      EXPECT_TRUE(loaded.Conservative(i) ==
                  IntervalView(source[i].conservative))
          << i;
    }
  }
  std::remove(path.c_str());
}

TEST(AprilStore, PipelineResultsMatchLegacyVectorsForAllMethods) {
  ScenarioOptions options;
  options.scale = 0.02;
  options.grid_order = 9;
  const ScenarioData scenario = BuildScenario("TL-TW", options);
  ASSERT_FALSE(scenario.candidates.empty());
  const AprilStore r_store = AprilStore::FromApproximations(scenario.r_april);
  const AprilStore s_store = AprilStore::FromApproximations(scenario.s_april);
  const DatasetView r_arena{&scenario.r.objects, nullptr, &r_store};
  const DatasetView s_arena{&scenario.s.objects, nullptr, &s_store};

  for (const Method method :
       {Method::kST2, Method::kOP2, Method::kApril, Method::kPC}) {
    Pipeline legacy(method, scenario.RView(), scenario.SView());
    Pipeline arena(method, r_arena, s_arena);
    for (const CandidatePair& pair : scenario.candidates) {
      EXPECT_EQ(legacy.FindRelation(pair.r_idx, pair.s_idx),
                arena.FindRelation(pair.r_idx, pair.s_idx))
          << ToString(method) << " pair (" << pair.r_idx << ","
          << pair.s_idx << ")";
    }
    EXPECT_EQ(legacy.Stats().refined, arena.Stats().refined)
        << ToString(method);
    EXPECT_EQ(legacy.Stats().decided_by_filter, arena.Stats().decided_by_filter)
        << ToString(method);

    // relate_p goes through the same storages.
    Pipeline legacy_rel(method, scenario.RView(), scenario.SView());
    Pipeline arena_rel(method, r_arena, s_arena);
    for (const de9im::Relation p :
         {de9im::Relation::kIntersects, de9im::Relation::kInside,
          de9im::Relation::kMeets}) {
      for (size_t k = 0; k < std::min<size_t>(scenario.candidates.size(), 50);
           ++k) {
        const CandidatePair& pair = scenario.candidates[k];
        EXPECT_EQ(legacy_rel.Relate(pair.r_idx, pair.s_idx, p),
                  arena_rel.Relate(pair.r_idx, pair.s_idx, p))
            << ToString(method);
      }
    }
  }
}

TEST(AprilStore, PipelineFallsBackOnUnusableStoreRecords) {
  ScenarioOptions options;
  options.scale = 0.02;
  options.grid_order = 9;
  const ScenarioData scenario = BuildScenario("TL-TW", options);
  ASSERT_FALSE(scenario.candidates.empty());
  // Rebuild the r store with every record unusable: kPC must refine every
  // non-MBR-decided pair, and results must equal the approximation-free ST2.
  AprilStore r_broken;
  for (size_t i = 0; i < scenario.r_april.size(); ++i) {
    r_broken.AppendCorruptPlaceholder();
  }
  const AprilStore s_store = AprilStore::FromApproximations(scenario.s_april);
  Pipeline degraded(Method::kPC,
                    DatasetView{&scenario.r.objects, nullptr, &r_broken},
                    DatasetView{&scenario.s.objects, nullptr, &s_store});
  Pipeline reference(Method::kST2, scenario.RView(), scenario.SView());
  for (const CandidatePair& pair : scenario.candidates) {
    EXPECT_EQ(degraded.FindRelation(pair.r_idx, pair.s_idx),
              reference.FindRelation(pair.r_idx, pair.s_idx));
  }
  EXPECT_GT(degraded.Stats().fallback_refined, 0u);
}

}  // namespace
}  // namespace stj
