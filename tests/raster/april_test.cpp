#include "src/raster/april.h"

#include <gtest/gtest.h>

#include "src/geometry/point_in_polygon.h"
#include "src/interval/interval_algebra.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace stj {
namespace {

TEST(AprilBuilder, ProgressiveIsSubsetOfConservative) {
  Rng rng(131);
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{100, 100}), 8);
  const AprilBuilder builder(&grid);
  for (int i = 0; i < 30; ++i) {
    const Polygon blob = test::RandomBlob(
        &rng, Point{rng.Uniform(10, 90), rng.Uniform(10, 90)},
        rng.LogUniform(0.2, 10.0), static_cast<size_t>(rng.UniformInt(6, 150)),
        0.25);
    const AprilApproximation april = builder.Build(blob);
    EXPECT_TRUE(april.conservative.Validate().empty());
    EXPECT_TRUE(april.progressive.Validate().empty());
    EXPECT_TRUE(ListInside(april.progressive, april.conservative)) << i;
    EXPECT_FALSE(april.conservative.Empty()) << i;
  }
}

TEST(AprilBuilder, IntervalCountIsFarBelowCellCount) {
  // Hilbert locality: intervals should be on the order of sqrt(cells), not
  // cells (Sec. 2.3).
  Rng rng(133);
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{100, 100}), 10);
  const AprilBuilder builder(&grid);
  const Polygon blob =
      test::RandomBlob(&rng, Point{50, 50}, 30.0, 200, 0.0);
  const AprilApproximation april = builder.Build(blob);
  const uint64_t cells = april.conservative.CellCount();
  ASSERT_GT(cells, 10000u);
  EXPECT_LT(april.conservative.Size(), cells / 10);
}

TEST(AprilBuilder, DisjointObjectsHaveDisjointConservativeLists) {
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{100, 100}), 8);
  const AprilBuilder builder(&grid);
  const AprilApproximation a = builder.Build(test::Square(10, 10, 20, 20));
  const AprilApproximation b = builder.Build(test::Square(60, 60, 80, 80));
  EXPECT_FALSE(ListsOverlap(a.conservative, b.conservative));
}

TEST(AprilBuilder, ContainedObjectListsNest) {
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{100, 100}), 9);
  const AprilBuilder builder(&grid);
  const AprilApproximation outer = builder.Build(test::Square(10, 10, 90, 90));
  const AprilApproximation inner = builder.Build(test::Square(40, 40, 60, 60));
  // The inner object lies deep inside the outer: every cell it touches is a
  // full cell of the outer square.
  EXPECT_TRUE(ListInside(inner.conservative, outer.progressive));
  EXPECT_TRUE(ListInside(inner.conservative, outer.conservative));
}

TEST(AprilBuilder, IdenticalGeometryGivesIdenticalLists) {
  Rng rng(135);
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{100, 100}), 8);
  const AprilBuilder builder(&grid);
  const Polygon blob = test::RandomBlob(&rng, Point{30, 40}, 8.0, 64, 0.3);
  const AprilApproximation a = builder.Build(blob);
  const AprilApproximation b = builder.Build(blob);
  EXPECT_TRUE(ListsMatch(a.conservative, b.conservative));
  EXPECT_TRUE(ListsMatch(a.progressive, b.progressive));
}

TEST(AprilBuilder, ConservativeCellsCoverInteriorSamples) {
  Rng rng(137);
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{100, 100}), 8);
  const AprilBuilder builder(&grid);
  const Polygon blob = test::RandomBlob(&rng, Point{50, 50}, 20.0, 100, 0.0);
  const AprilApproximation april = builder.Build(blob);
  for (int i = 0; i < 200; ++i) {
    const Point p{rng.Uniform(30, 70), rng.Uniform(30, 70)};
    if (Locate(p, blob) != Location::kInterior) continue;
    const CellId id = grid.CellIdOf(grid.CellX(p.x), grid.CellY(p.y));
    EXPECT_TRUE(april.conservative.ContainsCell(id));
  }
}

TEST(AprilBuilder, ProgressiveCellsAreTrulyInside) {
  Rng rng(139);
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{100, 100}), 7);
  const AprilBuilder builder(&grid);
  const Polygon blob = test::RandomBlob(&rng, Point{50, 50}, 25.0, 80, 0.4);
  const AprilApproximation april = builder.Build(blob);
  // Walk every P cell and verify its centre is interior.
  for (size_t i = 0; i < april.progressive.Size(); ++i) {
    for (CellId id = april.progressive[i].begin;
         id < april.progressive[i].end; ++id) {
      uint32_t cx = 0;
      uint32_t cy = 0;
      HilbertDToXY(grid.Order(), id, &cx, &cy);
      EXPECT_EQ(Locate(grid.CellBox(cx, cy).Center(), blob),
                Location::kInterior)
          << "cell " << id;
    }
  }
}

TEST(AprilBuilder, ByteSizeAccounting) {
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{100, 100}), 6);
  const AprilBuilder builder(&grid);
  const AprilApproximation april = builder.Build(test::Square(10, 10, 50, 50));
  EXPECT_EQ(april.ByteSize(),
            (april.conservative.Size() + april.progressive.Size()) *
                sizeof(CellInterval));
}

}  // namespace
}  // namespace stj
