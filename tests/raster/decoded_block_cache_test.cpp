#include "src/raster/decoded_block_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/interval/interval_codec.h"
#include "src/interval/interval_list.h"
#include "src/raster/april_compressed.h"

// The per-worker decoded-record LRU that serves flat views of
// CompressedAprilStore records to the filter stage: hit/miss/eviction
// behaviour under a byte budget, and isolation of records whose payload
// fails to decode (negative caching, no retries, no contamination of
// healthy neighbours).

namespace stj {
namespace {

// A canonical flat interval list whose content is record-specific, so a
// served view can be matched to the record it claims to be.
std::vector<CellInterval> FlatList(uint32_t record, size_t intervals) {
  std::vector<CellInterval> out;
  CellId cell = 1000 * record + 1;
  for (size_t i = 0; i < intervals; ++i) {
    out.push_back(CellInterval{cell, cell + 3});
    cell += 7;
  }
  return out;
}

IntervalView ViewOf(const std::vector<CellInterval>& list) {
  return IntervalView(list.data(), list.size());
}

CompressedAprilStore StoreWithRecords(size_t records, size_t intervals) {
  CompressedAprilStore store;
  for (size_t r = 0; r < records; ++r) {
    const std::vector<CellInterval> c =
        FlatList(static_cast<uint32_t>(r), intervals);
    store.AppendEncoded(ViewOf(c), ViewOf(c));
  }
  return store;
}

void ExpectServes(DecodedAprilCache* cache, const CompressedAprilStore& store,
                  uint32_t idx, size_t intervals) {
  AprilView view;
  const auto outcome = cache->Fetch(store, idx, &view);
  ASSERT_TRUE(outcome == DecodedAprilCache::FetchOutcome::kHit ||
              outcome == DecodedAprilCache::FetchOutcome::kMiss);
  const std::vector<CellInterval> expected = FlatList(idx, intervals);
  ASSERT_EQ(view.conservative.Size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(view.conservative[i], expected[i]) << "record " << idx;
  }
}

TEST(DecodedAprilCacheTest, MissThenHitServesIdenticalViews) {
  const CompressedAprilStore store = StoreWithRecords(4, 6);
  DecodedAprilCache cache(kDefaultDecodedCacheBytes);

  AprilView first;
  ASSERT_EQ(cache.Fetch(store, 2, &first),
            DecodedAprilCache::FetchOutcome::kMiss);
  AprilView second;
  ASSERT_EQ(cache.Fetch(store, 2, &second),
            DecodedAprilCache::FetchOutcome::kHit);
  EXPECT_EQ(cache.Stats().hits, 1u);
  EXPECT_EQ(cache.Stats().misses, 1u);
  ExpectServes(&cache, store, 2, 6);

  // The served flat views must equal what the store itself decodes.
  std::vector<CellInterval> c, p;
  ASSERT_TRUE(store.DecodeRecord(2, &c, &p));
  ASSERT_EQ(second.conservative.Size(), c.size());
  for (size_t i = 0; i < c.size(); ++i) EXPECT_EQ(second.conservative[i], c[i]);
  ASSERT_EQ(second.progressive.Size(), p.size());
  for (size_t i = 0; i < p.size(); ++i) EXPECT_EQ(second.progressive[i], p[i]);
}

TEST(DecodedAprilCacheTest, TinyBudgetEvictsButAlwaysServes) {
  const size_t kRecords = 32;
  const CompressedAprilStore store = StoreWithRecords(kRecords, 64);
  // A budget far below the working set: every record still gets served
  // correctly; the cache holds at least one entry and churns the rest.
  DecodedAprilCache cache(/*budget_bytes=*/1024);
  for (int round = 0; round < 3; ++round) {
    for (uint32_t r = 0; r < kRecords; ++r) {
      ExpectServes(&cache, store, r, 64);
    }
  }
  EXPECT_GT(cache.Stats().evictions, 0u);
  EXPECT_GE(cache.size(), 1u);
  // The budget bounds resident bytes up to the single always-kept entry.
  EXPECT_TRUE(cache.bytes() <= cache.budget_bytes() || cache.size() == 1u);
}

TEST(DecodedAprilCacheTest, LruKeepsHotRecordResident) {
  const CompressedAprilStore store = StoreWithRecords(16, 64);
  // Budget for a handful of entries; record 0 is touched between every other
  // access, so it must stay resident while the cold records churn.
  DecodedAprilCache cache(/*budget_bytes=*/8192);
  AprilView view;
  ASSERT_EQ(cache.Fetch(store, 0, &view),
            DecodedAprilCache::FetchOutcome::kMiss);
  for (uint32_t r = 1; r < 16; ++r) {
    cache.Fetch(store, r, &view);
    ASSERT_EQ(cache.Fetch(store, 0, &view),
              DecodedAprilCache::FetchOutcome::kHit)
        << "hot record evicted after touching record " << r;
  }
}

TEST(DecodedAprilCacheTest, UndecodablePayloadIsNegativeCachedAndIsolated) {
  CompressedAprilStore store;
  const std::vector<CellInterval> healthy = FlatList(0, 6);
  store.AppendEncoded(ViewOf(healthy), ViewOf(healthy));
  // A structurally present but undecodable record: the header promises two
  // intervals, the payload has no bytes to decode them from. Usable stays
  // true — this models codec corruption discovered at decode time, not a
  // loader placeholder.
  std::vector<IntervalBlockHeader> bad_headers(1);
  bad_headers[0].first_cell = 10;
  bad_headers[0].last_end = 20;
  bad_headers[0].count = 2;
  bad_headers[0].byte_offset = 0;
  const CompressedIntervalList bad = CompressedIntervalList::FromParts(
      std::move(bad_headers), /*bytes=*/{}, /*num_intervals=*/2);
  store.AppendRecord(bad, bad, /*usable=*/true);
  const std::vector<CellInterval> healthy2 = FlatList(2, 6);
  store.AppendEncoded(ViewOf(healthy2), ViewOf(healthy2));

  DecodedAprilCache cache(kDefaultDecodedCacheBytes);
  AprilView view;
  EXPECT_EQ(cache.Fetch(store, 1, &view),
            DecodedAprilCache::FetchOutcome::kCorrupt);
  // Negative-cached: the second lookup must not re-decode (misses stays 1).
  EXPECT_EQ(cache.Fetch(store, 1, &view),
            DecodedAprilCache::FetchOutcome::kCorrupt);
  EXPECT_EQ(cache.Stats().misses, 1u);
  EXPECT_EQ(cache.Stats().corrupt, 2u);
  EXPECT_EQ(cache.Stats().hits, 0u);
  // Healthy neighbours are unaffected.
  ExpectServes(&cache, store, 0, 6);
  ExpectServes(&cache, store, 2, 6);
}

TEST(DecodedAprilCacheTest, UnusableAndOutOfRangeAreAbsentWithoutTraffic) {
  CompressedAprilStore store;
  const std::vector<CellInterval> healthy = FlatList(0, 4);
  store.AppendEncoded(ViewOf(healthy), ViewOf(healthy));
  store.AppendCorruptPlaceholder();

  DecodedAprilCache cache(kDefaultDecodedCacheBytes);
  AprilView view;
  EXPECT_EQ(cache.Fetch(store, 1, &view),
            DecodedAprilCache::FetchOutcome::kAbsent);
  EXPECT_EQ(cache.Fetch(store, 7, &view),
            DecodedAprilCache::FetchOutcome::kAbsent);
  EXPECT_EQ(cache.Stats().hits, 0u);
  EXPECT_EQ(cache.Stats().misses, 0u);
  EXPECT_EQ(cache.Stats().corrupt, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(DecodedAprilCacheTest, EmptyRecordDecodesToEmptyViews) {
  CompressedAprilStore store;
  store.AppendEncoded(IntervalView(nullptr, 0), IntervalView(nullptr, 0));
  DecodedAprilCache cache(kDefaultDecodedCacheBytes);
  AprilView view;
  ASSERT_EQ(cache.Fetch(store, 0, &view),
            DecodedAprilCache::FetchOutcome::kMiss);
  EXPECT_EQ(view.conservative.Size(), 0u);
  EXPECT_EQ(view.progressive.Size(), 0u);
}

}  // namespace
}  // namespace stj
