#include "src/raster/grid.h"

#include <gtest/gtest.h>

namespace stj {
namespace {

TEST(RasterGrid, CellLookupCoversDataspace) {
  const Box space = Box::Of(Point{0, 0}, Point{100, 50});
  const RasterGrid grid(space, 4);  // 16 x 16 cells
  EXPECT_EQ(grid.CellsPerSide(), 16u);
  EXPECT_EQ(grid.CellX(grid.Dataspace().min.x), 0u);
  EXPECT_EQ(grid.CellY(grid.Dataspace().min.y), 0u);
  EXPECT_EQ(grid.CellX(grid.Dataspace().max.x), 15u);
  EXPECT_EQ(grid.CellY(grid.Dataspace().max.y), 15u);
  // Out-of-range values are clamped.
  EXPECT_EQ(grid.CellX(-1000.0), 0u);
  EXPECT_EQ(grid.CellX(1000.0), 15u);
}

TEST(RasterGrid, CellBoxesTileTheSpace) {
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{8, 8}), 3);
  double prev_max = grid.Dataspace().min.x;
  for (uint32_t cx = 0; cx < grid.CellsPerSide(); ++cx) {
    const Box cell = grid.CellBox(cx, 0);
    EXPECT_DOUBLE_EQ(cell.min.x, prev_max);
    prev_max = cell.max.x;
  }
  EXPECT_DOUBLE_EQ(prev_max, grid.Dataspace().max.x);
}

TEST(RasterGrid, PointMapsIntoItsCellBox) {
  const RasterGrid grid(Box::Of(Point{-10, -10}, Point{10, 10}), 5);
  const Point probes[] = {{0, 0}, {-9.99, -9.99}, {9.99, 9.99}, {3.7, -2.1}};
  for (const Point& p : probes) {
    const uint32_t cx = grid.CellX(p.x);
    const uint32_t cy = grid.CellY(p.y);
    EXPECT_TRUE(grid.CellBox(cx, cy).Contains(p))
        << p.x << "," << p.y << " -> " << cx << "," << cy;
  }
}

TEST(RasterGrid, RowCenterIsInsideRow) {
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{1, 1}), 6);
  for (uint32_t cy = 0; cy < grid.CellsPerSide(); cy += 7) {
    const double yc = grid.RowCenterY(cy);
    EXPECT_GT(yc, grid.RowY(cy));
    EXPECT_LT(yc, grid.RowY(cy + 1));
    EXPECT_EQ(grid.CellY(yc), cy);
  }
}

TEST(RasterGrid, InflationKeepsBoundaryObjectsInterior) {
  // Objects at the exact dataspace boundary must land strictly inside the
  // grid (the constructor inflates by a hair).
  const Box space = Box::Of(Point{0, 0}, Point{100, 100});
  const RasterGrid grid(space, 10);
  EXPECT_LT(grid.Dataspace().min.x, 0.0);
  EXPECT_GT(grid.Dataspace().max.x, 100.0);
  EXPECT_EQ(grid.CellX(0.0), 0u);
  EXPECT_LT(grid.CellX(100.0), grid.CellsPerSide());
}

TEST(RasterGrid, HilbertIdsMatchUnderlyingCurve) {
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{1, 1}), 8);
  EXPECT_EQ(grid.CellIdOf(3, 5), HilbertXYToD(8, 3, 5));
}

}  // namespace
}  // namespace stj
