// Differential tests for the run-based Hilbert interval construction: the
// output-sensitive path (AppendHilbertRunIntervals + per-run stream merge)
// must be byte-identical to the per-cell oracle on every input, because both
// emit the canonical interval form of the same cell set. These tests throw
// random runs, blobs, tessellations, slivers, and degenerate single-cell
// polygons at both paths across grid orders and seeds, and pin down the
// thread-count invariance of the parallel builder.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/datasets/scenarios.h"
#include "src/datasets/tessellation.h"
#include "src/raster/april.h"
#include "src/raster/april_store.h"
#include "src/raster/grid.h"
#include "src/raster/hilbert.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace stj {
namespace {

/// Brute-force oracle for one run: enumerate, map, canonicalise.
IntervalList RunOracle(uint32_t order, uint32_t x_lo, uint32_t x_hi,
                       uint32_t y) {
  std::vector<CellId> cells;
  for (uint32_t x = x_lo; x <= x_hi; ++x) {
    cells.push_back(HilbertXYToD(order, x, y));
  }
  return IntervalList::FromCells(std::move(cells));
}

TEST(HilbertRuns, DecompositionMatchesBruteForceOnRandomRuns) {
  Rng rng(4242);
  for (int iter = 0; iter < 3000; ++iter) {
    const uint32_t order = static_cast<uint32_t>(rng.UniformInt(1, 10));
    const uint32_t n = 1u << order;
    const uint32_t y = static_cast<uint32_t>(rng.UniformInt(0, n - 1));
    uint32_t a = static_cast<uint32_t>(rng.UniformInt(0, n - 1));
    uint32_t b = static_cast<uint32_t>(rng.UniformInt(0, n - 1));
    if (a > b) std::swap(a, b);
    std::vector<CellInterval> got;
    AppendHilbertRunIntervals(order, a, b, y, &got);
    const IntervalList got_list = IntervalList::FromSorted(std::move(got));
    EXPECT_TRUE(got_list.Validate().empty());
    EXPECT_TRUE(got_list == RunOracle(order, a, b, y))
        << "order=" << order << " y=" << y << " run=[" << a << "," << b << "]";
  }
}

TEST(HilbertRuns, DecompositionHandlesFullRowsAtHighOrders) {
  // Full rows at high orders exercise the deepest recursions. The curve
  // re-enters a row repeatedly, so even a full row decomposes into ~n/3
  // intervals — the decomposition must produce exactly the canonical form
  // covering all n cells without ever materialising the n cell ids.
  for (const uint32_t order : {12u, 14u, 16u}) {
    const uint32_t n = 1u << order;
    std::vector<CellInterval> out;
    AppendHilbertRunIntervals(order, 0, n - 1, n / 2, &out);
    uint64_t cells = 0;
    for (const CellInterval& iv : out) cells += iv.Length();
    EXPECT_EQ(cells, n);
    EXPECT_LE(out.size(), static_cast<size_t>(n / 2));
    EXPECT_TRUE(IntervalList::FromSorted(std::move(out)).Validate().empty());
  }
}

void ExpectIdentical(const AprilApproximation& oracle,
                     const AprilApproximation& fast, const char* what) {
  EXPECT_TRUE(oracle.conservative == fast.conservative) << what << " C lists";
  EXPECT_TRUE(oracle.progressive == fast.progressive) << what << " P lists";
}

TEST(HilbertRuns, BuilderMatchesOracleOnBlobsAcrossOrdersAndSeeds) {
  for (const uint32_t order : {4u, 8u, 12u, 16u}) {
    const RasterGrid grid(Box::Of(Point{0, 0}, Point{100, 100}), order);
    const AprilBuilder fast(&grid);
    const AprilBuilder oracle(&grid, /*per_cell_oracle=*/true);
    for (const uint64_t seed : {11ull, 22ull, 33ull}) {
      Rng rng(seed);
      for (int i = 0; i < 6; ++i) {
        // Keep the object's cell footprint bounded at high orders so the
        // per-cell oracle stays cheap: shrink the radius with the order.
        const double radius =
            rng.LogUniform(0.2, 4.0) * (order >= 14 ? 0.25 : 1.0);
        const Polygon blob = test::RandomBlob(
            &rng, Point{rng.Uniform(10, 90), rng.Uniform(10, 90)}, radius,
            static_cast<size_t>(rng.UniformInt(6, 80)), 0.25);
        ExpectIdentical(oracle.Build(blob), fast.Build(blob), "blob");
      }
    }
  }
}

TEST(HilbertRuns, BuilderMatchesOracleOnTessellations) {
  Rng rng(777);
  TessellationParams params;
  params.cols = 6;
  params.rows = 6;
  const std::vector<Polygon> cells = MakeTessellation(&rng, params);
  for (const uint32_t order : {4u, 8u, 10u}) {
    const RasterGrid grid(Box::Of(Point{0, 0}, Point{100, 100}), order);
    const AprilBuilder fast(&grid);
    const AprilBuilder oracle(&grid, /*per_cell_oracle=*/true);
    for (const Polygon& poly : cells) {
      ExpectIdentical(oracle.Build(poly), fast.Build(poly), "tessellation");
    }
  }
}

TEST(HilbertRuns, BuilderMatchesOracleOnSliversAndSingleCells) {
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{100, 100}), 10);
  const AprilBuilder fast(&grid);
  const AprilBuilder oracle(&grid, /*per_cell_oracle=*/true);

  // Sliver: thinner than a cell, so every covered cell is partial and the
  // P list is empty.
  const Polygon sliver = test::Square(10.0, 50.0, 90.0, 50.001);
  const AprilApproximation sliver_fast = fast.Build(sliver);
  ExpectIdentical(oracle.Build(sliver), sliver_fast, "sliver");
  EXPECT_TRUE(sliver_fast.progressive.Empty());
  EXPECT_FALSE(sliver_fast.conservative.Empty());

  // Diagonal sliver (touches a staircase of cells, one run per row).
  const Polygon diag = Polygon(Ring({Point{5, 5}, Point{95, 94.99},
                                     Point{95, 95.01}, Point{5, 5.02}}));
  ExpectIdentical(oracle.Build(diag), fast.Build(diag), "diagonal sliver");

  // Polygon entirely inside one cell.
  const double w = 100.0 / 1024.0;
  const Polygon tiny = test::Square(50.0 * w + 0.1 * w, 50.0 * w + 0.1 * w,
                                    50.0 * w + 0.3 * w, 50.0 * w + 0.3 * w);
  const AprilApproximation tiny_fast = fast.Build(tiny);
  ExpectIdentical(oracle.Build(tiny), tiny_fast, "single-cell");
  EXPECT_TRUE(tiny_fast.progressive.Empty());

  // Empty polygon: both lists empty on both paths.
  const Polygon empty;
  const AprilApproximation empty_fast = fast.Build(empty);
  ExpectIdentical(oracle.Build(empty), empty_fast, "empty");
  EXPECT_TRUE(empty_fast.conservative.Empty());
}

TEST(HilbertRuns, BuilderMatchesOracleAcrossTheBlockPathCutoff) {
  // The run-based path switches from per-run decomposition to quadrant
  // blocks once the coverage is large enough; a polygon with a hole sweeps
  // both sides of the cutoff as the order grows and exercises the
  // empty-interior classification of the block recursion.
  const Polygon holey = test::SquareWithHole(10, 10, 90, 90, /*hw=*/15);
  for (const uint32_t order : {4u, 6u, 8u, 10u, 12u}) {
    const RasterGrid grid(Box::Of(Point{0, 0}, Point{100, 100}), order);
    const AprilBuilder fast(&grid);
    const AprilBuilder oracle(&grid, /*per_cell_oracle=*/true);
    ExpectIdentical(oracle.Build(holey), fast.Build(holey), "holey square");
  }
}

TEST(HilbertRuns, ParallelBuilderIsThreadCountInvariant) {
  const Dataset dataset = BuildDataset("TW", 0.05, 99);
  ASSERT_GT(dataset.objects.size(), 4u);
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{100, 100}), 10);
  const std::vector<AprilApproximation> serial =
      BuildAprilApproximations(dataset, grid, /*num_threads=*/1);
  const AprilStore serial_store = AprilStore::FromApproximations(serial);
  for (const unsigned threads : {2u, 3u, 5u, 8u}) {
    const std::vector<AprilApproximation> parallel =
        BuildAprilApproximations(dataset, grid, threads);
    ASSERT_EQ(parallel.size(), serial.size()) << threads << " threads";
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(serial[i].conservative == parallel[i].conservative)
          << "object " << i << " with " << threads << " threads";
      EXPECT_TRUE(serial[i].progressive == parallel[i].progressive)
          << "object " << i << " with " << threads << " threads";
    }
    // Arena form: identical stores, byte for byte.
    EXPECT_TRUE(AprilStore::FromApproximations(parallel) == serial_store)
        << threads << " threads";
  }
}

TEST(HilbertRuns, ParallelOracleBuildMatchesRunBasedBuild) {
  // The builder flag must select the construction path without changing the
  // result, also when fanned out.
  const Dataset dataset = BuildDataset("TC", 0.03, 5);
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{100, 100}), 9);
  const std::vector<AprilApproximation> fast =
      BuildAprilApproximations(dataset, grid, 3, /*per_cell_oracle=*/false);
  const std::vector<AprilApproximation> oracle =
      BuildAprilApproximations(dataset, grid, 3, /*per_cell_oracle=*/true);
  ASSERT_EQ(fast.size(), oracle.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    ExpectIdentical(oracle[i], fast[i], "parallel dataset object");
  }
}

}  // namespace
}  // namespace stj
