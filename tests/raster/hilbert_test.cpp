#include "src/raster/hilbert.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "src/util/rng.h"

namespace stj {
namespace {

TEST(Hilbert, Order1Layout) {
  // The order-1 curve visits (0,0), (0,1), (1,1), (1,0).
  EXPECT_EQ(HilbertXYToD(1, 0, 0), 0u);
  EXPECT_EQ(HilbertXYToD(1, 0, 1), 1u);
  EXPECT_EQ(HilbertXYToD(1, 1, 1), 2u);
  EXPECT_EQ(HilbertXYToD(1, 1, 0), 3u);
}

TEST(Hilbert, RoundTripSmallOrders) {
  for (uint32_t order = 1; order <= 6; ++order) {
    const uint32_t side = 1u << order;
    std::set<uint64_t> seen;
    for (uint32_t y = 0; y < side; ++y) {
      for (uint32_t x = 0; x < side; ++x) {
        const uint64_t d = HilbertXYToD(order, x, y);
        EXPECT_LT(d, static_cast<uint64_t>(side) * side);
        EXPECT_TRUE(seen.insert(d).second) << "duplicate d at order " << order;
        uint32_t rx = 0;
        uint32_t ry = 0;
        HilbertDToXY(order, d, &rx, &ry);
        EXPECT_EQ(rx, x);
        EXPECT_EQ(ry, y);
      }
    }
  }
}

TEST(Hilbert, ConsecutiveIndicesAreAdjacentCells) {
  // The defining property of the curve: unit steps in d move to a
  // 4-neighbour cell.
  const uint32_t order = 5;
  const uint32_t side = 1u << order;
  uint32_t px = 0;
  uint32_t py = 0;
  HilbertDToXY(order, 0, &px, &py);
  for (uint64_t d = 1; d < static_cast<uint64_t>(side) * side; ++d) {
    uint32_t x = 0;
    uint32_t y = 0;
    HilbertDToXY(order, d, &x, &y);
    const int manhattan = std::abs(static_cast<int>(x) - static_cast<int>(px)) +
                          std::abs(static_cast<int>(y) - static_cast<int>(py));
    ASSERT_EQ(manhattan, 1) << "jump at d=" << d;
    px = x;
    py = y;
  }
}

TEST(Hilbert, RoundTripRandomAtOrder16) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.NextBounded(1u << 16));
    const uint32_t y = static_cast<uint32_t>(rng.NextBounded(1u << 16));
    const uint64_t d = HilbertXYToD(16, x, y);
    EXPECT_LT(d, 1ull << 32);
    uint32_t rx = 0;
    uint32_t ry = 0;
    HilbertDToXY(16, d, &rx, &ry);
    EXPECT_EQ(rx, x);
    EXPECT_EQ(ry, y);
  }
}

TEST(Hilbert, LocalityBeatsRowMajorOnAverage) {
  // Sanity check of the reason APRIL uses Hilbert enumeration: the average
  // index distance between 4-neighbour cells is much smaller than for
  // row-major order.
  const uint32_t order = 6;
  const uint32_t side = 1u << order;
  double hilbert_sum = 0.0;
  double rowmajor_sum = 0.0;
  size_t count = 0;
  for (uint32_t y = 0; y + 1 < side; ++y) {
    for (uint32_t x = 0; x < side; ++x) {
      const uint64_t d1 = HilbertXYToD(order, x, y);
      const uint64_t d2 = HilbertXYToD(order, x, y + 1);
      hilbert_sum += d1 > d2 ? static_cast<double>(d1 - d2)
                             : static_cast<double>(d2 - d1);
      rowmajor_sum += side;  // row-major vertical neighbour distance
      ++count;
    }
  }
  EXPECT_LT(hilbert_sum / static_cast<double>(count),
            0.5 * rowmajor_sum / static_cast<double>(count));
}

}  // namespace
}  // namespace stj
