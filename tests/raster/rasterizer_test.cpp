#include "src/raster/rasterizer.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "src/geometry/point_in_polygon.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace stj {
namespace {

using CellSet = std::set<std::pair<uint32_t, uint32_t>>;

CellSet PartialCells(const RasterCoverage& cov) {
  CellSet cells;
  for (size_t row = 0; row < cov.partial_by_row.size(); ++row) {
    for (const uint32_t cx : cov.partial_by_row[row]) {
      cells.insert({cx, cov.y0 + static_cast<uint32_t>(row)});
    }
  }
  return cells;
}

CellSet FullCells(const RasterCoverage& cov) {
  CellSet cells;
  for (size_t row = 0; row < cov.full_runs_by_row.size(); ++row) {
    for (const auto& [first, last] : cov.full_runs_by_row[row]) {
      for (uint32_t cx = first; cx <= last; ++cx) {
        cells.insert({cx, cov.y0 + static_cast<uint32_t>(row)});
      }
    }
  }
  return cells;
}

TEST(Rasterizer, SquareAlignedInsideCells) {
  // Grid over [0,8]^2 at order 3: cell size 1x1 (plus hair inflation).
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{8, 8}), 3);
  const Rasterizer rasterizer(&grid);
  // Square [1.25, 6.75]^2: boundary cells are the rim, interior is full.
  const Polygon square = test::Square(1.25, 1.25, 6.75, 6.75);
  const RasterCoverage cov = rasterizer.Rasterize(square);
  const CellSet partial = PartialCells(cov);
  const CellSet full = FullCells(cov);
  // Full cells: [2..5]^2 = 16 cells.
  EXPECT_EQ(full.size(), 16u);
  for (uint32_t cy = 2; cy <= 5; ++cy) {
    for (uint32_t cx = 2; cx <= 5; ++cx) {
      EXPECT_TRUE(full.count({cx, cy})) << cx << "," << cy;
    }
  }
  // Boundary passes through the rim ring of [1..6]^2 minus the interior.
  EXPECT_EQ(partial.size(), 36u - 16u);
  // Full and partial are disjoint.
  for (const auto& cell : full) EXPECT_FALSE(partial.count(cell));
}

TEST(Rasterizer, TinyPolygonHasOnlyPartialCells) {
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{100, 100}), 4);
  const Rasterizer rasterizer(&grid);
  const Polygon dot = test::Square(50.1, 50.1, 50.2, 50.2);
  const RasterCoverage cov = rasterizer.Rasterize(dot);
  EXPECT_EQ(cov.FullCount(), 0u);
  EXPECT_GE(cov.PartialCount(), 1u);
}

TEST(Rasterizer, HolePreventsFullCells) {
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{16, 16}), 4);
  const Rasterizer rasterizer(&grid);
  // Donut: full cells must exist in the body but not in the hole.
  const Polygon donut = test::SquareWithHole(1.25, 1.25, 14.75, 14.75, 3.0);
  const RasterCoverage cov = rasterizer.Rasterize(donut);
  const CellSet full = FullCells(cov);
  ASSERT_FALSE(full.empty());
  for (const auto& [cx, cy] : full) {
    // Sample the cell centre: it must be in the polygon's interior (not in
    // the hole).
    const Box cell = grid.CellBox(cx, cy);
    EXPECT_EQ(Locate(cell.Center(), donut), Location::kInterior)
        << cx << "," << cy;
  }
  // The hole's central cell is neither partial nor full.
  const uint32_t hole_cx = grid.CellX(8.0);
  const uint32_t hole_cy = grid.CellY(8.0);
  EXPECT_FALSE(full.count({hole_cx, hole_cy}));
  EXPECT_FALSE(PartialCells(cov).count({hole_cx, hole_cy}));
}

// Property: full cells are entirely inside; every point of the polygon is
// covered by partial ∪ full; partial ∩ full = ∅.
TEST(RasterizerProperty, CoverageInvariantsOnRandomBlobs) {
  Rng rng(121);
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{100, 100}), 7);
  const Rasterizer rasterizer(&grid);
  for (int round = 0; round < 40; ++round) {
    const Polygon blob = test::RandomBlob(
        &rng, Point{rng.Uniform(10, 90), rng.Uniform(10, 90)},
        rng.LogUniform(0.5, 15.0),
        static_cast<size_t>(rng.UniformInt(6, 200)),
        /*hole_probability=*/0.3);
    const RasterCoverage cov = rasterizer.Rasterize(blob);
    const CellSet partial = PartialCells(cov);
    const CellSet full = FullCells(cov);

    for (const auto& cell : full) {
      ASSERT_FALSE(partial.count(cell)) << "round " << round;
    }
    // Full cells: all four corners and the centre lie in the closed polygon.
    for (const auto& [cx, cy] : full) {
      const Box cell = grid.CellBox(cx, cy);
      ASSERT_NE(Locate(cell.Center(), blob), Location::kExterior);
      const Point corners[] = {cell.min, cell.max,
                               Point{cell.min.x, cell.max.y},
                               Point{cell.max.x, cell.min.y}};
      for (const Point& corner : corners) {
        ASSERT_NE(Locate(corner, blob), Location::kExterior)
            << "round " << round << " cell " << cx << "," << cy;
      }
    }
    // Random points inside the polygon fall in covered cells.
    const Box bounds = blob.Bounds();
    for (int probe = 0; probe < 100; ++probe) {
      const Point p{rng.Uniform(bounds.min.x, bounds.max.x),
                    rng.Uniform(bounds.min.y, bounds.max.y)};
      if (Locate(p, blob) != Location::kInterior) continue;
      const auto cell = std::make_pair(grid.CellX(p.x), grid.CellY(p.y));
      ASSERT_TRUE(partial.count(cell) || full.count(cell))
          << "round " << round << " uncovered interior point " << p.x << ","
          << p.y;
    }
    // Random points in full cells are inside the polygon.
    for (const auto& [cx, cy] : full) {
      const Box cell = grid.CellBox(cx, cy);
      const Point p{rng.Uniform(cell.min.x, cell.max.x),
                    rng.Uniform(cell.min.y, cell.max.y)};
      ASSERT_EQ(Locate(p, blob), Location::kInterior) << "round " << round;
      break;  // one sample per polygon keeps the test fast
    }
  }
}

TEST(Rasterizer, EmptyPolygon) {
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{1, 1}), 4);
  const Rasterizer rasterizer(&grid);
  const RasterCoverage cov = rasterizer.Rasterize(Polygon{});
  EXPECT_EQ(cov.PartialCount(), 0u);
  EXPECT_EQ(cov.FullCount(), 0u);
}

}  // namespace
}  // namespace stj
