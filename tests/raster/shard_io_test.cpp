#include "src/raster/shard_io.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/datasets/scenarios.h"
#include "src/join/partitioner.h"
#include "src/util/mmap_file.h"

namespace stj {
namespace {

// Encode a flat approximation set into the blocked codec (corrupt entries
// stay placeholders) — the form the shard writer persists.
CompressedAprilStore Compress(const std::vector<AprilApproximation>& april) {
  CompressedAprilStore cstore;
  for (const AprilApproximation& a : april) {
    if (!a.usable) {
      cstore.AppendCorruptPlaceholder();
      continue;
    }
    const AprilView view(a);
    cstore.AppendEncoded(view.conservative, view.progressive);
  }
  return cstore;
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::vector<uint8_t> data;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return data;
  std::fseek(f, 0, SEEK_END);
  data.resize(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  if (!data.empty() && std::fread(data.data(), 1, data.size(), f) == 0) {
    data.clear();
  }
  std::fclose(f);
  return data;
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& data) {
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  if (!data.empty()) {
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
  }
  std::fclose(f);
}

// Locates the segment-table entry of `kind` in a raw shard file image.
// Layout per shard_io.h: 40-byte header, then 32-byte entries of
// { u32 kind | u32 pad | u64 offset | u64 bytes | u64 fnv }.
bool FindSegment(const std::vector<uint8_t>& file, uint32_t kind,
                 uint64_t* offset, uint64_t* bytes) {
  constexpr size_t kHeader = 40, kEntry = 32;
  for (size_t e = 0; e < shard::kNumSegments; ++e) {
    const size_t at = kHeader + e * kEntry;
    uint32_t k;
    std::memcpy(&k, file.data() + at, sizeof(k));
    if (k != kind) continue;
    std::memcpy(offset, file.data() + at + 8, sizeof(*offset));
    std::memcpy(bytes, file.data() + at + 16, sizeof(*bytes));
    return true;
  }
  return false;
}

class ShardIoTest : public ::testing::Test {
 protected:
  ShardIoTest() {
    ScenarioOptions options;
    options.scale = 0.05;
    options.grid_order = 10;
    options.run_join = false;
    scenario_ = BuildScenario("OLE-OPE", options);
    cstore_ = Compress(scenario_.r_april);

    const std::vector<Box> mbrs = scenario_.r.Mbrs();
    std::vector<uint64_t> units(mbrs.size());
    for (size_t i = 0; i < units.size(); ++i) {
      units[i] = scenario_.r.objects[i].geometry.VertexCount();
    }
    PartitionOptions poptions;
    poptions.target_tiles = 4;
    partition_ = BuildCostBalancedPartition(mbrs, units, poptions);
  }

  // Each test writes into its own directory under the shared TempDir (tests
  // may run as separate ctest processes against the same TempDir).
  std::string Dir(const std::string& name) const {
    return std::string(::testing::TempDir()) + "/shard_io_" + name;
  }

  Status Write(const std::string& dir, ShardWriteStats* stats = nullptr) {
    return WriteShardSet(dir, partition_.grid, partition_.tile_begin,
                         partition_.entries, partition_.tile_units,
                         scenario_.r.objects, cstore_, stats);
  }

  ScenarioData scenario_;
  CompressedAprilStore cstore_;
  TilePartition partition_;
};

TEST_F(ShardIoTest, RoundTripPreservesEveryTileSlice) {
  const std::string dir = Dir("roundtrip");
  ShardWriteStats wstats;
  ASSERT_TRUE(Write(dir, &wstats).ok());
  EXPECT_EQ(wstats.tiles, partition_.Tiles());
  EXPECT_GT(wstats.bytes_written, 0u);

  ShardSet set;
  ASSERT_TRUE(ShardSet::Open(dir, &set).ok());
  ASSERT_EQ(set.Tiles(), partition_.Tiles());
  EXPECT_TRUE(set.Grid() == partition_.grid);
  EXPECT_EQ(set.TotalObjects(), scenario_.r.objects.size());

  for (uint32_t t = 0; t < set.Tiles(); ++t) {
    LoadedShard shard;
    ASSERT_TRUE(set.LoadTile(t, &shard).ok()) << "tile " << t;
    EXPECT_EQ(shard.tile, t);

    // Ids reproduce the partitioner's CSR slice exactly.
    const std::vector<uint32_t> expected_ids(
        partition_.entries.begin() + partition_.tile_begin[t],
        partition_.entries.begin() + partition_.tile_begin[t + 1]);
    ASSERT_EQ(shard.ids, expected_ids);

    // Geometry round-trips: ids, ring structure, vertices, MBRs.
    ASSERT_EQ(shard.objects.size(), expected_ids.size());
    ASSERT_EQ(shard.mbrs.size(), expected_ids.size());
    CompressedAprilStore expected_slice;
    for (size_t k = 0; k < expected_ids.size(); ++k) {
      const SpatialObject& orig = scenario_.r.objects[expected_ids[k]];
      const SpatialObject& got = shard.objects[k];
      ASSERT_EQ(got.id, orig.id);
      ASSERT_EQ(got.geometry.RingCount(), orig.geometry.RingCount());
      ASSERT_EQ(got.geometry.VertexCount(), orig.geometry.VertexCount());
      EXPECT_EQ(got.geometry.Bounds(), orig.geometry.Bounds());
      EXPECT_EQ(shard.mbrs[k], orig.geometry.Bounds());
      expected_slice.AppendRecordFrom(cstore_, expected_ids[k]);
    }

    // The mapped APRIL slice is byte-identical to the writer's input
    // (records are copied verbatim, never re-encoded).
    EXPECT_TRUE(shard.cstore == expected_slice) << "tile " << t;
  }
}

TEST_F(ShardIoTest, LoadedAprilIsZeroCopyOffTheMapping) {
  const std::string dir = Dir("zerocopy");
  ASSERT_TRUE(Write(dir).ok());
  ShardSet set;
  ASSERT_TRUE(ShardSet::Open(dir, &set).ok());
  LoadedShard shard;
  ASSERT_TRUE(set.LoadTile(0, &shard).ok());
  ASSERT_TRUE(shard.cstore.IsMapped());

  const uint8_t* base = shard.map.Data();
  const uint8_t* end = base + shard.map.Size();
  const CompressedStoreSpans& spans = shard.cstore.Spans();
  const auto inside = [&](const void* p) {
    return reinterpret_cast<const uint8_t*>(p) >= base &&
           reinterpret_cast<const uint8_t*>(p) < end;
  };
  ASSERT_GT(spans.count, 0u);
  EXPECT_TRUE(inside(spans.headers));
  EXPECT_TRUE(inside(spans.hdr_begin));
  EXPECT_TRUE(inside(spans.byte_begin));
  EXPECT_TRUE(inside(spans.usable));
  if (spans.byte_begin[spans.count] > 0) {
    EXPECT_TRUE(inside(spans.bytes));
  }

  // Accounting sanity: the mapping dominates resident_bytes, and the eager
  // part never exceeds the file.
  EXPECT_GE(shard.resident_bytes, shard.map.Size());
  EXPECT_GT(shard.eager_bytes, 0u);
  EXPECT_LE(shard.eager_bytes, shard.map.Size());
}

TEST_F(ShardIoTest, ValidateCleanSetReportsEverySegment) {
  const std::string dir = Dir("validate_clean");
  ASSERT_TRUE(Write(dir).ok());
  ShardCheckReport report;
  ASSERT_TRUE(ValidateShardSet(dir, &report).ok());
  EXPECT_FALSE(report.Corrupt());
  EXPECT_EQ(report.tiles, partition_.Tiles());
  EXPECT_EQ(report.tiles_corrupt, 0u);
  EXPECT_EQ(report.segments_checked,
            uint64_t{shard::kNumSegments} * partition_.Tiles());
  EXPECT_TRUE(report.issues.empty());
}

TEST_F(ShardIoTest, PayloadCorruptionCaughtByValidateNotByLoad) {
  const std::string dir = Dir("payload_corrupt");
  ASSERT_TRUE(Write(dir).ok());
  ShardSet set;
  ASSERT_TRUE(ShardSet::Open(dir, &set).ok());

  // Flip one byte inside the APRIL payload arena of tile 0. The structural
  // layer (header, table, CSR offsets) is untouched, so the lazy join path
  // must still load the tile — checksumming payloads at load would fault
  // every page in — while the full audit must flag it.
  const std::string path = set.TilePath(0);
  std::vector<uint8_t> file = ReadFile(path);
  ASSERT_FALSE(file.empty());
  uint64_t offset = 0, bytes = 0;
  ASSERT_TRUE(FindSegment(file, shard::kAprilBytes, &offset, &bytes));
  ASSERT_GT(bytes, 0u) << "tile 0 has an empty codec arena; pick a bigger "
                          "scenario scale";
  file[offset] ^= 0xFF;
  WriteFile(path, file);

  LoadedShard shard;
  EXPECT_TRUE(set.LoadTile(0, &shard).ok());

  ShardCheckReport report;
  ASSERT_TRUE(ValidateShardSet(dir, &report).ok());
  EXPECT_TRUE(report.Corrupt());
  EXPECT_EQ(report.tiles_corrupt, 1u);
  ASSERT_FALSE(report.issues.empty());
}

TEST_F(ShardIoTest, TableCorruptionFailsLoadAndValidate) {
  const std::string dir = Dir("table_corrupt");
  ASSERT_TRUE(Write(dir).ok());
  ShardSet set;
  ASSERT_TRUE(ShardSet::Open(dir, &set).ok());

  const std::string path = set.TilePath(0);
  std::vector<uint8_t> file = ReadFile(path);
  ASSERT_GT(file.size(), 48u);
  file[44] ^= 0x01;  // inside the first segment-table entry
  WriteFile(path, file);

  LoadedShard shard;
  const Status status = set.LoadTile(0, &shard);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);

  ShardCheckReport report;
  ASSERT_TRUE(ValidateShardSet(dir, &report).ok());
  EXPECT_TRUE(report.Corrupt());
}

TEST_F(ShardIoTest, TruncatedShardFailsLoad) {
  const std::string dir = Dir("truncated");
  ASSERT_TRUE(Write(dir).ok());
  ShardSet set;
  ASSERT_TRUE(ShardSet::Open(dir, &set).ok());

  const std::string path = set.TilePath(0);
  std::vector<uint8_t> file = ReadFile(path);
  ASSERT_GT(file.size(), 4096u);
  file.resize(file.size() / 2);
  WriteFile(path, file);

  LoadedShard shard;
  const Status status = set.LoadTile(0, &shard);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
}

TEST_F(ShardIoTest, ManifestCorruptionRejectsOpen) {
  const std::string dir = Dir("manifest_corrupt");
  ASSERT_TRUE(Write(dir).ok());
  const std::string manifest = dir + "/manifest.stj";
  std::vector<uint8_t> file = ReadFile(manifest);
  ASSERT_GT(file.size(), 32u);
  file[file.size() - 1] ^= 0x80;  // payload byte — frame checksum must trip
  WriteFile(manifest, file);

  ShardSet set;
  const Status status = ShardSet::Open(dir, &set);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
}

TEST_F(ShardIoTest, MissingShardSetIsNotFound) {
  ShardSet set;
  const Status status = ShardSet::Open(Dir("does_not_exist"), &set);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(ShardIoTest, ResolveShardSetDirAcceptsDirAndManifestPath) {
  const std::string dir = Dir("resolve");
  ASSERT_TRUE(Write(dir).ok());
  std::string resolved;
  EXPECT_TRUE(ResolveShardSetDir(dir, &resolved));
  EXPECT_EQ(resolved, dir);
  EXPECT_TRUE(ResolveShardSetDir(dir + "/manifest.stj", &resolved));
  EXPECT_EQ(resolved, dir);
  EXPECT_FALSE(ResolveShardSetDir(Dir("resolve_missing"), &resolved));
}

TEST(MappedFileTest, MissingFileIsNotFound) {
  MappedFile map;
  const Status status =
      MappedFile::Open(std::string(::testing::TempDir()) + "/no_such_file",
                       &map);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace stj
