#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/raster/april.h"
#include "src/raster/april_io.h"
#include "src/util/rng.h"
#include "tests/robustness/corrupter.h"
#include "tests/test_support.h"

// Exhaustive single-fault injection against the APRIL binary format: every
// possible truncation length and every possible single-byte flip of a valid
// file must either fail the load with a Status or degrade it with an accurate
// report — and the verified prefix must always match the original data. A
// crash, hang, or silent wrong answer anywhere in these sweeps is a bug.

namespace stj {
namespace {

std::string TempPath(const char* name) {
  // Each test case runs as its own ctest process against the shared TempDir;
  // a pid-qualified name keeps concurrently scheduled cases from racing on
  // the scratch files.
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return std::string(::testing::TempDir()) + "/" +
         (info != nullptr ? info->name() : "unknown") + "_" +
         std::to_string(::getpid()) + "_" + name;
}

// Offsets of the v2 record frames in \p bytes (one per record, in order),
// plus the end offset of the last frame. Derived by walking the frame sizes,
// mirroring the reader's resynchronisation rule.
std::vector<size_t> FrameOffsets(const std::string& bytes, size_t count) {
  constexpr size_t kHeaderSize = 4 + 4 + 8;  // magic, u32 version, u64 count
  std::vector<size_t> offsets;
  size_t off = kHeaderSize;
  for (size_t i = 0; i < count; ++i) {
    offsets.push_back(off);
    uint64_t payload_size = 0;
    EXPECT_LE(off + 16, bytes.size());
    std::memcpy(&payload_size, bytes.data() + off, sizeof payload_size);
    off += 16 + payload_size;  // size, checksum, payload
  }
  offsets.push_back(off);
  return offsets;
}

class AprilFaultInjectionTest : public ::testing::Test {
 protected:
  AprilFaultInjectionTest() {
    Rng rng(91);
    const RasterGrid grid(Box::Of(Point{0, 0}, Point{64, 64}), 6);
    const AprilBuilder builder(&grid);
    for (int i = 0; i < 6; ++i) {
      originals_.push_back(builder.Build(test::RandomBlob(
          &rng, Point{rng.Uniform(10, 54), rng.Uniform(10, 54)},
          rng.LogUniform(2.0, 10.0), 24, 0.3)));
    }
  }

  // Loads \p bytes as an APRIL file and asserts the damage-is-detected
  // invariants: the load never crashes, a damaged file is never reported
  // fully healthy, and every record in the aligned verified prefix (before
  // the first corrupt or missing index) matches the original bit-for-bit.
  void ExpectDetectedAndPrefixExact(const std::string& bytes,
                                    const std::string& label) {
    const std::string path = TempPath("april_fault_scratch.bin");
    test::WriteFileBytes(path, bytes);

    std::vector<AprilApproximation> loaded;
    AprilLoadReport report;
    const Status status = LoadAprilFileDetailed(path, &loaded, &report);

    // Damage must never go unnoticed.
    EXPECT_TRUE(!status.ok() || report.Degraded()) << label;

    // The strict wrapper must refuse anything less than a perfect load.
    std::vector<AprilApproximation> strict;
    EXPECT_FALSE(LoadAprilFile(path, &strict)) << label;

    if (status.ok()) {
      // Records before the first corruption are frame-aligned with the
      // original file, so they must have decoded exactly.
      size_t verified_prefix =
          std::min(loaded.size(), originals_.size());
      if (!report.corrupt_indices.empty()) {
        verified_prefix = std::min<size_t>(verified_prefix,
                                           report.corrupt_indices.front());
      }
      for (size_t i = 0; i < verified_prefix; ++i) {
        EXPECT_TRUE(loaded[i].usable) << label << " record " << i;
        EXPECT_EQ(loaded[i].conservative, originals_[i].conservative)
            << label << " record " << i;
        EXPECT_EQ(loaded[i].progressive, originals_[i].progressive)
            << label << " record " << i;
      }
      // Every record the reader flagged corrupt must be marked unusable.
      for (const uint64_t idx : report.corrupt_indices) {
        ASSERT_LT(idx, loaded.size()) << label;
        EXPECT_FALSE(loaded[idx].usable) << label << " record " << idx;
      }
    }
    std::remove(path.c_str());
  }

  std::string SavedBytes(bool compressed) {
    const std::string path = TempPath(compressed ? "april_fault_comp.bin"
                                                 : "april_fault_raw.bin");
    const bool saved = compressed ? SaveAprilFileCompressed(path, originals_)
                                  : SaveAprilFile(path, originals_);
    EXPECT_TRUE(saved);
    std::string bytes = test::ReadFileBytes(path);
    std::remove(path.c_str());
    return bytes;
  }

  std::vector<AprilApproximation> originals_;
};

TEST_F(AprilFaultInjectionTest, TruncationAtEveryLengthIsDetected) {
  for (const bool compressed : {false, true}) {
    const std::string bytes = SavedBytes(compressed);
    ASSERT_GT(bytes.size(), 16u);
    for (size_t len = 0; len < bytes.size(); ++len) {
      ExpectDetectedAndPrefixExact(
          test::TruncatedTo(bytes, len),
          (compressed ? "compressed" : "raw") + std::string(" truncated to ") +
              std::to_string(len));
    }
  }
}

TEST_F(AprilFaultInjectionTest, ByteFlipAtEveryOffsetIsDetected) {
  for (const bool compressed : {false, true}) {
    const std::string bytes = SavedBytes(compressed);
    for (size_t i = 0; i < bytes.size(); ++i) {
      ExpectDetectedAndPrefixExact(
          test::WithFlippedByte(bytes, i),
          (compressed ? "compressed" : "raw") + std::string(" flip @") +
              std::to_string(i));
    }
  }
}

TEST_F(AprilFaultInjectionTest, TruncationAtExactRecordBoundaries) {
  // Cutting precisely between frames must yield exactly the preceding
  // records, all usable, with the missing tail accounted as corrupt.
  const std::string bytes = SavedBytes(/*compressed=*/true);
  const std::vector<size_t> offsets = FrameOffsets(bytes, originals_.size());
  ASSERT_EQ(offsets.back(), bytes.size());

  const std::string path = TempPath("april_fault_boundary.bin");
  for (size_t k = 0; k < originals_.size(); ++k) {
    test::WriteFileBytes(path, test::TruncatedTo(bytes, offsets[k]));
    std::vector<AprilApproximation> loaded;
    AprilLoadReport report;
    const Status status = LoadAprilFileDetailed(path, &loaded, &report);
    ASSERT_TRUE(status.ok()) << "cut after " << k << ": " << status.ToString();
    EXPECT_TRUE(report.truncated);
    EXPECT_EQ(report.loaded, k);
    EXPECT_EQ(report.corrupt, originals_.size() - k);
    ASSERT_EQ(loaded.size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_TRUE(loaded[i].usable);
      EXPECT_EQ(loaded[i].conservative, originals_[i].conservative) << i;
      EXPECT_EQ(loaded[i].progressive, originals_[i].progressive) << i;
    }
  }
  std::remove(path.c_str());
}

TEST_F(AprilFaultInjectionTest, TruncationInsideHeaderIsStructuralError) {
  const std::string bytes = SavedBytes(/*compressed=*/false);
  const std::string path = TempPath("april_fault_header.bin");
  for (size_t len = 0; len < 16; ++len) {  // magic + version + count
    test::WriteFileBytes(path, test::TruncatedTo(bytes, len));
    std::vector<AprilApproximation> loaded;
    AprilLoadReport report;
    const Status status = LoadAprilFileDetailed(path, &loaded, &report);
    EXPECT_FALSE(status.ok()) << "header cut at " << len;
    EXPECT_TRUE(loaded.empty()) << "header cut at " << len;
  }
  std::remove(path.c_str());
}

TEST_F(AprilFaultInjectionTest, CorruptMidFileRecordIsIsolated) {
  // One flipped payload byte in record 2 must cost exactly record 2: the
  // reader resynchronises at the next frame and every other record survives.
  const std::string bytes = SavedBytes(/*compressed=*/true);
  const std::vector<size_t> offsets = FrameOffsets(bytes, originals_.size());
  const size_t payload_byte = offsets[2] + 16;  // first byte past the frame

  const std::string path = TempPath("april_fault_midfile.bin");
  test::WriteFileBytes(path, test::WithFlippedByte(bytes, payload_byte));
  std::vector<AprilApproximation> loaded;
  AprilLoadReport report;
  const Status status = LoadAprilFileDetailed(path, &loaded, &report);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(report.Degraded());
  EXPECT_FALSE(report.truncated);
  EXPECT_EQ(report.corrupt, 1u);
  ASSERT_EQ(report.corrupt_indices, std::vector<uint64_t>{2});
  ASSERT_EQ(loaded.size(), originals_.size());
  for (size_t i = 0; i < loaded.size(); ++i) {
    if (i == 2) {
      EXPECT_FALSE(loaded[i].usable);
      continue;
    }
    EXPECT_TRUE(loaded[i].usable) << i;
    EXPECT_EQ(loaded[i].conservative, originals_[i].conservative) << i;
    EXPECT_EQ(loaded[i].progressive, originals_[i].progressive) << i;
  }
  std::remove(path.c_str());
}

TEST_F(AprilFaultInjectionTest, VersionOneFilesLoadStrictlyOrFailWhole) {
  // Hand-written unframed v1 file: one record, C = {[0,10), [20,30)},
  // P = {[2,4)}. Valid file loads; any truncation fails the whole load
  // (v1 has no checksums, so nothing can be salvaged safely).
  std::string bytes;
  auto append_u64 = [&bytes](uint64_t v) {
    bytes.append(reinterpret_cast<const char*>(&v), sizeof v);
  };
  bytes.append("APRL", 4);
  const uint32_t version = 1;
  bytes.append(reinterpret_cast<const char*>(&version), sizeof version);
  append_u64(1);  // object count
  append_u64(2);  // C interval count
  append_u64(0);
  append_u64(10);
  append_u64(20);
  append_u64(30);
  append_u64(1);  // P interval count
  append_u64(2);
  append_u64(4);

  const std::string path = TempPath("april_fault_v1.bin");
  test::WriteFileBytes(path, bytes);
  std::vector<AprilApproximation> loaded;
  AprilLoadReport report;
  ASSERT_TRUE(LoadAprilFileDetailed(path, &loaded, &report).ok());
  EXPECT_EQ(report.version, 1u);
  EXPECT_FALSE(report.Degraded());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].conservative,
            IntervalList::FromSorted({{0, 10}, {20, 30}}));
  EXPECT_EQ(loaded[0].progressive, IntervalList::FromSorted({{2, 4}}));

  for (size_t len = 16; len < bytes.size(); ++len) {
    test::WriteFileBytes(path, test::TruncatedTo(bytes, len));
    std::vector<AprilApproximation> cut;
    const Status status = LoadAprilFileDetailed(path, &cut, nullptr);
    EXPECT_FALSE(status.ok()) << "v1 cut at " << len;
    EXPECT_TRUE(cut.empty()) << "v1 cut at " << len;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace stj
