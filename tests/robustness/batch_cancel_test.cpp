#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/datasets/scenarios.h"
#include "src/topology/parallel.h"
#include "tests/robustness/fault_schedule.h"

// Cancellation through the staged batch executor: a trip mid-batch must cut
// the join at a pair boundary with a loss-less subset-consistent
// PartialResult — every Answered pair carries the exact unbounded result,
// every other pair is flagged not-done, and no worker is left blocked on the
// stage queue. Mirrors the PR 6 differentials over the pair-at-a-time path.

namespace stj {
namespace {

class BatchCancelTest : public ::testing::Test {
 protected:
  BatchCancelTest() {
    ScenarioOptions options;
    options.scale = 0.05;
    options.grid_order = 10;
    scenario_ = BuildScenario("OLE-OPE", options);
    full_ = ParallelFindRelation(Method::kPC, scenario_.RView(),
                                 scenario_.SView(), scenario_.candidates,
                                 /*num_threads=*/1);
  }

  /// Every answered pair of a cut-short batched run must match the unbounded
  /// ground truth, and the completed count must equal the done-bitmap
  /// population.
  void ExpectSubsetConsistent(const ParallelJoinResult& cut) const {
    ASSERT_EQ(cut.partial.total, scenario_.candidates.size());
    ASSERT_EQ(cut.partial.done.size(), scenario_.candidates.size());
    uint64_t done = 0;
    for (size_t i = 0; i < scenario_.candidates.size(); ++i) {
      if (!cut.partial.Answered(i)) continue;
      ++done;
      EXPECT_EQ(cut.relations[i], full_.relations[i]) << "pair " << i;
    }
    EXPECT_EQ(cut.partial.completed, done);
  }

  ScenarioData scenario_;
  ParallelJoinResult full_;
};

TEST_F(BatchCancelTest, CancelMidBatchIsSubsetConsistent) {
  ExecContext ctx;
  test::FaultSchedule schedule;
  schedule.cancel_at_checkin = 40;  // mid-run: some batches in flight
  schedule.Install(&ctx);

  const ParallelJoinResult cut = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      JoinOptions{.num_threads = 4, .exec = &ctx, .batch_size = 16});
  ASSERT_EQ(cut.status.code(), StatusCode::kCancelled);
  EXPECT_LT(cut.partial.completed, cut.partial.total);
  ExpectSubsetConsistent(cut);
}

TEST_F(BatchCancelTest, DeadlineMidBatchIsSubsetConsistent) {
  ExecContext ctx;
  test::FaultSchedule schedule;
  schedule.deadline_at_checkin = 65;
  schedule.Install(&ctx);

  const ParallelJoinResult cut = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      JoinOptions{.num_threads = 4, .exec = &ctx, .batch_size = 32});
  ASSERT_EQ(cut.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(cut.stats.deadline_hits, 1u);
  ExpectSubsetConsistent(cut);
}

TEST_F(BatchCancelTest, RemainderRerunReproducesFullResult) {
  // The loss-less contract end to end through the batch path: finish exactly
  // the unanswered pairs unbounded and merge — the union must equal the
  // unbounded run byte for byte.
  ExecContext ctx;
  test::FaultSchedule schedule;
  schedule.cancel_at_checkin = 50;
  schedule.Install(&ctx);
  const ParallelJoinResult cut = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      JoinOptions{.num_threads = 4, .exec = &ctx, .batch_size = 16});
  ASSERT_EQ(cut.status.code(), StatusCode::kCancelled);
  ASSERT_FALSE(cut.partial.Complete());

  std::vector<CandidatePair> remainder;
  std::vector<size_t> remainder_index;
  for (size_t i = 0; i < scenario_.candidates.size(); ++i) {
    if (cut.partial.Answered(i)) continue;
    remainder.push_back(scenario_.candidates[i]);
    remainder_index.push_back(i);
  }
  ASSERT_EQ(remainder.size(), cut.partial.total - cut.partial.completed);
  const ParallelJoinResult rest = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), remainder,
      JoinOptions{.num_threads = 4, .batch_size = 16});
  ASSERT_TRUE(rest.status.ok());

  std::vector<de9im::Relation> merged = cut.relations;
  for (size_t k = 0; k < remainder.size(); ++k) {
    merged[remainder_index[k]] = rest.relations[k];
  }
  EXPECT_EQ(merged, full_.relations);
}

TEST_F(BatchCancelTest, PreTrippedContextAnswersNothing) {
  ExecContext ctx;
  ctx.RequestStop(StopCause::kCancelled);
  const ParallelJoinResult cut = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      JoinOptions{.num_threads = 4, .exec = &ctx, .batch_size = 64});
  EXPECT_EQ(cut.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(cut.partial.completed, 0u);
}

TEST_F(BatchCancelTest, RelateCancelMidBatchIsSubsetConsistent) {
  const ParallelRelateResult truth = ParallelRelate(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      de9im::Relation::kIntersects, /*num_threads=*/1);
  ASSERT_TRUE(truth.status.ok());

  ExecContext ctx;
  test::FaultSchedule schedule;
  schedule.cancel_at_checkin = 45;
  schedule.Install(&ctx);
  const ParallelRelateResult cut = ParallelRelate(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      de9im::Relation::kIntersects,
      JoinOptions{.num_threads = 4, .exec = &ctx, .batch_size = 16});
  EXPECT_EQ(cut.status.code(), StatusCode::kCancelled);
  EXPECT_LT(cut.partial.completed, cut.partial.total);
  uint64_t done = 0;
  for (size_t i = 0; i < scenario_.candidates.size(); ++i) {
    if (!cut.partial.Answered(i)) continue;
    ++done;
    EXPECT_EQ(cut.matches[i], truth.matches[i]) << "pair " << i;
  }
  EXPECT_EQ(cut.partial.completed, done);
}

TEST_F(BatchCancelTest, TinyQueueCancelDoesNotDeadlock) {
  // Back-pressure + cancellation together: with queue_depth=1 most pushes go
  // through the help loop; a trip mid-help must still wake every worker and
  // return. (A deadlock here fails as a test timeout.)
  ExecContext ctx;
  test::FaultSchedule schedule;
  schedule.cancel_at_checkin = 70;
  schedule.Install(&ctx);
  const ParallelJoinResult cut = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      JoinOptions{
          .num_threads = 4, .exec = &ctx, .batch_size = 8, .queue_depth = 1});
  EXPECT_EQ(cut.status.code(), StatusCode::kCancelled);
  ExpectSubsetConsistent(cut);
}

}  // namespace
}  // namespace stj
