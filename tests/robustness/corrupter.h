#pragma once

// Deterministic corruption helpers for the fault-injection suite: read a
// file into memory, damage specific bytes, write it back. No randomness —
// every scenario is reproducible from the test source alone.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace stj::test {

inline std::string ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string bytes;
  if (f != nullptr) {
    char buf[1 << 16];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
    std::fclose(f);
  }
  return bytes;
}

inline void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  ASSERT_EQ(std::fclose(f), 0);
}

/// The original bytes with byte \p index inverted (XOR 0xFF — guaranteed to
/// change the byte, unlike XOR with a random mask).
inline std::string WithFlippedByte(const std::string& bytes, size_t index) {
  std::string damaged = bytes;
  damaged[index] = static_cast<char>(~static_cast<unsigned char>(bytes[index]));
  return damaged;
}

/// The first \p size bytes of the original.
inline std::string TruncatedTo(const std::string& bytes, size_t size) {
  return bytes.substr(0, size);
}

}  // namespace stj::test
