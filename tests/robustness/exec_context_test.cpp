#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/datasets/scenarios.h"
#include "src/join/mbr_join.h"
#include "src/topology/parallel.h"
#include "src/util/exec_context.h"
#include "tests/robustness/fault_schedule.h"

// Cancellation/budget layer tests: the contract under test is *loss-less
// cooperative cancellation* — a tripped query stops at work-unit boundaries,
// every result produced before the cut is final and identical to what the
// unbounded run would have produced, and the PartialResult names exactly
// those results. Most tests pin the trip to an exact check-in ordinal via
// FaultSchedule so the cut is reproducible; the one wall-clock test checks
// the realised latency of a real 50 ms deadline.

// Sanitizer / unoptimised builds run the refinement kernels an order of
// magnitude slower, which stretches the time from a trip to the next pair
// boundary; the wall-clock latency bound scales accordingly.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define STJ_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(undefined_behavior_sanitizer)
#define STJ_TEST_SANITIZED 1
#endif
#endif
#ifndef STJ_TEST_SANITIZED
#define STJ_TEST_SANITIZED 0
#endif

namespace stj {
namespace {

#if STJ_TEST_SANITIZED || !defined(NDEBUG)
constexpr int64_t kCancelBudgetMs = 5000;
#else
constexpr int64_t kCancelBudgetMs = 100;  // the ISSUE's acceptance bound
#endif

TEST(ExecContext, FirstTripWinsAndMapsToStatus) {
  ExecContext ctx;
  EXPECT_FALSE(ctx.StopRequested());
  EXPECT_TRUE(ctx.ToStatus().ok());

  EXPECT_TRUE(ctx.RequestStop(StopCause::kDeadlineExceeded));
  EXPECT_FALSE(ctx.RequestStop(StopCause::kCancelled));  // too late
  EXPECT_TRUE(ctx.StopRequested());
  EXPECT_EQ(ctx.cause(), StopCause::kDeadlineExceeded);
  EXPECT_EQ(ctx.ToStatus().code(), StatusCode::kDeadlineExceeded);

  ExecContext cancelled;
  cancelled.Cancel();
  EXPECT_EQ(cancelled.ToStatus().code(), StatusCode::kCancelled);
}

TEST(ExecContext, BudgetArithmeticTripsOnOverflow) {
  ExecContext ctx;
  EXPECT_TRUE(ctx.TryCharge(1 << 20));  // no budget armed: everything fits

  ExecContext bounded;
  bounded.SetMemoryBudget(100);
  EXPECT_TRUE(bounded.TryCharge(60));
  EXPECT_EQ(bounded.charged_bytes(), 60u);
  EXPECT_FALSE(bounded.TryCharge(50));  // 110 > 100: trip
  EXPECT_EQ(bounded.cause(), StopCause::kMemoryExceeded);
  EXPECT_EQ(bounded.ToStatus().code(), StatusCode::kResourceExhausted);
  // A tripped context refuses further charges even after a release.
  bounded.Release(60);
  EXPECT_FALSE(bounded.TryCharge(1));
  EXPECT_EQ(bounded.charged_bytes(), 60u);
}

TEST(ExecContext, NullScopeIsANoOp) {
  ExecContext::Scope scope(nullptr);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(scope.CheckIn());
  EXPECT_FALSE(scope.stopped());
  EXPECT_EQ(scope.checkins(), 0u);
}

TEST(ExecContext, ScopeFlushesWatchdogTotalsOnDestruction) {
  ExecContext ctx;
  {
    ExecContext::Scope scope(&ctx);
    for (int i = 0; i < 7; ++i) EXPECT_FALSE(scope.CheckIn());
    EXPECT_EQ(scope.checkins(), 7u);
    // Not yet flushed: totals move only when the scope dies.
    EXPECT_EQ(ctx.WatchdogSnapshot().checkins, 0u);
  }
  EXPECT_EQ(ctx.WatchdogSnapshot().checkins, 7u);
}

TEST(ExecContext, ScopeObservesTripExactlyOnce) {
  ExecContext ctx;
  ExecContext::Scope scope(&ctx);
  EXPECT_FALSE(scope.CheckIn());
  ctx.Cancel();
  EXPECT_TRUE(scope.CheckIn());
  EXPECT_TRUE(scope.stopped());
  EXPECT_EQ(scope.observed_cause(), StopCause::kCancelled);
  EXPECT_TRUE(scope.CheckIn());  // sticky
  const ExecWatchdogStats stats = [&] {
    ExecContext::Scope second(&ctx);
    EXPECT_TRUE(second.CheckIn());
    return ctx.WatchdogSnapshot();
  }();
  EXPECT_EQ(stats.stop_observations, 2u);  // one per observing scope
}

/// Differential fixture: a small real scenario plus its unbounded
/// ground-truth join, against which every partial result is checked.
class ExecContextJoinTest : public ::testing::Test {
 protected:
  ExecContextJoinTest() {
    ScenarioOptions options;
    options.scale = 0.05;
    options.grid_order = 10;
    scenario_ = BuildScenario("OLE-OPE", options);
    full_ = ParallelFindRelation(Method::kPC, scenario_.RView(),
                                 scenario_.SView(), scenario_.candidates,
                                 /*num_threads=*/1);
    EXPECT_TRUE(full_.status.ok());
    EXPECT_TRUE(full_.partial.Complete());
    // The fault schedules below assume a non-trivial pair count.
    EXPECT_GT(scenario_.candidates.size(), 60u);
  }

  /// Asserts the loss-less contract: \p result answered a strict non-empty
  /// subset of the pairs, and every answered relation equals the unbounded
  /// run's answer for that pair.
  void ExpectPrefixConsistent(const ParallelJoinResult& result) {
    const PartialResult& partial = result.partial;
    ASSERT_EQ(partial.total, scenario_.candidates.size());
    EXPECT_GT(partial.completed, 0u);
    EXPECT_LT(partial.completed, partial.total);
    ASSERT_EQ(partial.done.size(), partial.total);
    uint64_t answered = 0;
    for (size_t i = 0; i < partial.total; ++i) {
      if (!partial.Answered(i)) continue;
      ++answered;
      EXPECT_EQ(result.relations[i], full_.relations[i]) << "pair " << i;
    }
    EXPECT_EQ(answered, partial.completed);
  }

  ScenarioData scenario_;
  ParallelJoinResult full_;
};

TEST_F(ExecContextJoinTest, CancelAtNthCheckInYieldsPrefixConsistentSubset) {
  ExecContext ctx;
  test::FaultSchedule schedule;
  schedule.cancel_at_checkin = 50;
  schedule.Install(&ctx);

  const ParallelJoinResult result = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      JoinOptions{.num_threads = 4, .exec = &ctx});
  EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
  ExpectPrefixConsistent(result);

  const ExecWatchdogStats watchdog = ctx.WatchdogSnapshot();
  EXPECT_GE(watchdog.checkins, 50u);
  EXPECT_GE(watchdog.stop_observations, 1u);
  // The merged per-stage stats carry the same totals as the watchdog.
  EXPECT_EQ(result.stats.checkins, watchdog.checkins);
}

TEST_F(ExecContextJoinTest, RerunningTheRemainderReproducesTheFullResult) {
  ExecContext ctx;
  test::FaultSchedule schedule;
  schedule.cancel_at_checkin = 40;
  schedule.Install(&ctx);

  const ParallelJoinResult cut = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      JoinOptions{.num_threads = 2, .exec = &ctx});
  ASSERT_EQ(cut.status.code(), StatusCode::kCancelled);
  ASSERT_FALSE(cut.partial.Complete());

  // Collect exactly the unanswered pairs and finish them unbounded.
  std::vector<CandidatePair> remainder;
  std::vector<size_t> remainder_index;
  for (size_t i = 0; i < scenario_.candidates.size(); ++i) {
    if (cut.partial.Answered(i)) continue;
    remainder.push_back(scenario_.candidates[i]);
    remainder_index.push_back(i);
  }
  ASSERT_EQ(remainder.size(), cut.partial.total - cut.partial.completed);
  const ParallelJoinResult rest =
      ParallelFindRelation(Method::kPC, scenario_.RView(), scenario_.SView(),
                           remainder, /*num_threads=*/2);
  ASSERT_TRUE(rest.status.ok());

  // Merging the two runs by pair index must reproduce the unbounded result
  // exactly — nothing was half-done, nothing answered twice.
  std::vector<de9im::Relation> merged = cut.relations;
  for (size_t k = 0; k < remainder.size(); ++k) {
    merged[remainder_index[k]] = rest.relations[k];
  }
  EXPECT_EQ(merged, full_.relations);
}

TEST_F(ExecContextJoinTest, SingleThreadCancelIsAnExactInputOrderPrefix) {
  constexpr uint64_t kTripAt = 25;
  ExecContext ctx;
  test::FaultSchedule schedule;
  schedule.cancel_at_checkin = kTripAt;
  schedule.Install(&ctx);

  const ParallelJoinResult result = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      JoinOptions{.num_threads = 1, .exec = &ctx});
  ASSERT_EQ(result.status.code(), StatusCode::kCancelled);
  // One check-in precedes each pair, so tripping the Nth check-in means
  // exactly N-1 pairs completed — and single-threaded execution processes
  // pairs in input order, so they are precisely the first N-1.
  EXPECT_EQ(result.partial.completed, kTripAt - 1);
  ASSERT_EQ(result.partial.done.size(), scenario_.candidates.size());
  for (size_t i = 0; i < result.partial.done.size(); ++i) {
    EXPECT_EQ(result.partial.done[i] != 0, i < kTripAt - 1) << "pair " << i;
    if (i < kTripAt - 1) {
      EXPECT_EQ(result.relations[i], full_.relations[i]);
    }
  }
}

TEST_F(ExecContextJoinTest, InjectedDeadlineReportsDeadlineStatusAndStats) {
  ExecContext ctx;
  test::FaultSchedule schedule;
  schedule.deadline_at_checkin = 30;
  schedule.Install(&ctx);

  const ParallelJoinResult result = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      JoinOptions{.num_threads = 2, .exec = &ctx});
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  ExpectPrefixConsistent(result);
  // Every worker scope that observed this trip accounts one deadline hit.
  EXPECT_GE(result.stats.deadline_hits, 1u);
  EXPECT_EQ(result.stats.deadline_hits,
            ctx.WatchdogSnapshot().stop_observations);
}

TEST_F(ExecContextJoinTest, RelatePredicatePartialIsPrefixConsistent) {
  const ParallelRelateResult truth = ParallelRelate(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      de9im::Relation::kIntersects, /*num_threads=*/1);
  ASSERT_TRUE(truth.status.ok());

  ExecContext ctx;
  test::FaultSchedule schedule;
  schedule.cancel_at_checkin = 35;
  schedule.Install(&ctx);
  const ParallelRelateResult cut = ParallelRelate(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      de9im::Relation::kIntersects, JoinOptions{.num_threads = 2, .exec = &ctx});
  EXPECT_EQ(cut.status.code(), StatusCode::kCancelled);
  EXPECT_GT(cut.partial.completed, 0u);
  EXPECT_LT(cut.partial.completed, cut.partial.total);
  for (size_t i = 0; i < scenario_.candidates.size(); ++i) {
    if (!cut.partial.Answered(i)) continue;
    EXPECT_EQ(cut.matches[i], truth.matches[i]) << "pair " << i;
  }
}

TEST_F(ExecContextJoinTest, MemoryBudgetTripDuringAprilBuildKeepsJoinExact) {
  // A budget that admits a few records but not the whole store: the build
  // stops cooperatively, keeps everything charged before the trip, and
  // flags the rest unusable — the degraded-load shape, so the join must
  // still match ground truth exactly via refinement fallback.
  ExecContext ctx;
  ctx.SetMemoryBudget(4096);
  const RasterGrid grid(scenario_.dataspace, scenario_.grid_order);
  const std::vector<AprilApproximation> partial_april =
      BuildAprilApproximations(scenario_.r, grid, /*num_threads=*/2,
                               /*per_cell_oracle=*/false, &ctx);
  ASSERT_TRUE(ctx.StopRequested());
  EXPECT_EQ(ctx.ToStatus().code(), StatusCode::kResourceExhausted);
  ASSERT_EQ(partial_april.size(), scenario_.r.objects.size());
  size_t unusable = 0;
  for (const AprilApproximation& a : partial_april) unusable += a.usable ? 0 : 1;
  EXPECT_GT(unusable, 0u);

  const DatasetView r_view{&scenario_.r.objects, &partial_april};
  const ParallelJoinResult degraded =
      ParallelFindRelation(Method::kPC, r_view, scenario_.SView(),
                           scenario_.candidates, /*num_threads=*/2);
  ASSERT_TRUE(degraded.status.ok());
  EXPECT_EQ(degraded.relations, full_.relations);
  EXPECT_GT(degraded.stats.fallback_refined, 0u);
}

TEST_F(ExecContextJoinTest, InjectedAllocationFailureAtNthCharge) {
  // Fail the 3rd tracked allocation: with one worker the build is input
  // order, so records 0 and 1 survive and everything from the failed charge
  // on is flagged unusable.
  ExecContext ctx;
  test::FaultSchedule schedule;
  schedule.fail_charge_at = 3;
  schedule.Install(&ctx);
  const RasterGrid grid(scenario_.dataspace, scenario_.grid_order);
  const std::vector<AprilApproximation> partial_april =
      BuildAprilApproximations(scenario_.r, grid, /*num_threads=*/1,
                               /*per_cell_oracle=*/false, &ctx);
  ASSERT_TRUE(ctx.StopRequested());
  EXPECT_EQ(ctx.cause(), StopCause::kMemoryExceeded);
  ASSERT_EQ(partial_april.size(), scenario_.r.objects.size());
  for (size_t i = 0; i < partial_april.size(); ++i) {
    EXPECT_EQ(partial_april[i].usable, i < 2) << "record " << i;
  }

  const DatasetView r_view{&scenario_.r.objects, &partial_april};
  const ParallelJoinResult degraded =
      ParallelFindRelation(Method::kPC, r_view, scenario_.SView(),
                           scenario_.candidates, /*num_threads=*/2);
  EXPECT_EQ(degraded.relations, full_.relations);
  EXPECT_GT(degraded.stats.fallback_refined, 0u);
}

TEST_F(ExecContextJoinTest, MbrJoinStopsCooperativelyAndFlagsTheCut) {
  const std::vector<Box> r_mbrs = scenario_.r.Mbrs();
  const std::vector<Box> s_mbrs = scenario_.s.Mbrs();
  MbrJoin::Options unbounded;
  unbounded.num_threads = 2;
  const std::vector<CandidatePair> all = MbrJoin::Join(r_mbrs, s_mbrs,
                                                       unbounded);

  ExecContext ctx;
  test::FaultSchedule schedule;
  schedule.cancel_at_checkin = 4;
  schedule.Install(&ctx);
  MbrJoin::Options bounded = unbounded;
  bounded.exec = &ctx;
  const std::vector<CandidatePair> cut = MbrJoin::Join(r_mbrs, s_mbrs,
                                                       bounded);
  // The trip must be visible to the caller — a cut-short candidate set is
  // "query stopped", never "smaller join".
  EXPECT_TRUE(ctx.StopRequested());
  EXPECT_LT(cut.size(), all.size());

  // A budget too small for the tile tables stops the join before any pair
  // is emitted.
  ExecContext tiny;
  tiny.SetMemoryBudget(16);
  MbrJoin::Options strangled = unbounded;
  strangled.exec = &tiny;
  const std::vector<CandidatePair> none = MbrJoin::Join(r_mbrs, s_mbrs,
                                                        strangled);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(tiny.cause(), StopCause::kMemoryExceeded);
}

TEST(ExecContextDeadline, FiftyMsDeadlineCutsAMultiSecondJoinFast) {
  // The ISSUE's acceptance scenario: a refinement workload that normally
  // runs for seconds must, under a 50 ms deadline, come back quickly with a
  // non-empty prefix-consistent partial result. ST2 refines every
  // intersecting pair, so even a mid-sized scenario gives multi-second
  // unbounded runtimes without making this test expensive to set up.
  ScenarioOptions options;
  options.scale = 0.3;
  options.build_april = false;  // ST2 never consults the approximations
  ScenarioData scenario = BuildScenario("OLE-OPE", options);
  ASSERT_GT(scenario.candidates.size(), 1000u);
  const DatasetView r_view{&scenario.r.objects, nullptr};
  const DatasetView s_view{&scenario.s.objects, nullptr};

  // The wall-clock SLA is measured under whatever load the test runner puts
  // on the machine (ctest schedules many binaries in parallel), so a single
  // attempt can blow the budget on scheduler noise alone. Correctness
  // invariants must hold on every attempt; the latency bound must hold on at
  // least one of a few.
  ParallelJoinResult result;
  int64_t best_elapsed_ms = std::numeric_limits<int64_t>::max();
  for (int attempt = 0; attempt < 3; ++attempt) {
    ExecContext ctx;
    ctx.SetDeadlineAfter(std::chrono::milliseconds(50));
    const auto start = std::chrono::steady_clock::now();
    result = ParallelFindRelation(
        Method::kST2, r_view, s_view, scenario.candidates,
        JoinOptions{.num_threads = 4, .exec = &ctx});
    const int64_t elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    best_elapsed_ms = std::min(best_elapsed_ms, elapsed_ms);

    EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_GT(result.partial.completed, 0u);
    EXPECT_LT(result.partial.completed, result.partial.total);
    EXPECT_GE(result.stats.deadline_hits, 1u);
    EXPECT_GT(ctx.WatchdogSnapshot().deadline_polls, 0u);
    if (elapsed_ms < kCancelBudgetMs) break;
  }
  EXPECT_LT(best_elapsed_ms, kCancelBudgetMs);

  // Prefix consistency, verified cheaply: re-answer only the answered pairs
  // unbounded and compare — the partial run must have produced the same
  // relations.
  std::vector<CandidatePair> answered;
  std::vector<size_t> answered_index;
  for (size_t i = 0; i < scenario.candidates.size(); ++i) {
    if (!result.partial.Answered(i)) continue;
    answered.push_back(scenario.candidates[i]);
    answered_index.push_back(i);
  }
  const ParallelJoinResult redo = ParallelFindRelation(
      Method::kST2, r_view, s_view, answered, /*num_threads=*/4);
  ASSERT_TRUE(redo.status.ok());
  for (size_t k = 0; k < answered.size(); ++k) {
    EXPECT_EQ(result.relations[answered_index[k]], redo.relations[k])
        << "pair " << answered_index[k];
  }
}

}  // namespace
}  // namespace stj
