#pragma once

#include <cstdint>

#include "src/util/exec_context.h"

// Deterministic fault schedules for the cancellation/budget layer: instead of
// racing a wall-clock deadline against the scheduler, tests pin the fault to
// an exact point in the cooperative schedule — "trip at the Nth check-in",
// "fail the Mth tracked allocation" — so a cut-short run is reproducible and
// its partial result can be compared against ground truth.

namespace stj::test {

/// Declarative fault plan for one ExecContext. Ordinals are 1-based and
/// *global* across all workers — ExecContext allocates them atomically, so
/// exactly one check-in observes "the 50th" even in a multi-threaded run.
/// Which pairs land before that instant varies with scheduling, which is
/// exactly what the prefix-consistency tests must be robust to.
struct FaultSchedule {
  /// Request a cooperative cancel at this global check-in (0 = never).
  uint64_t cancel_at_checkin = 0;
  /// Trip the deadline cause at this global check-in (0 = never). Simulates
  /// "the clock poll fired here" without depending on real elapsed time.
  uint64_t deadline_at_checkin = 0;
  /// Fail this global TryCharge (0 = never): the allocation is refused and
  /// the context trips kMemoryExceeded, exactly as a budget overflow would.
  uint64_t fail_charge_at = 0;

  /// Installs the schedule's hooks on \p ctx. Call before workers start.
  void Install(ExecContext* ctx) const {
    if (cancel_at_checkin != 0 || deadline_at_checkin != 0) {
      const uint64_t cancel_at = cancel_at_checkin;
      const uint64_t deadline_at = deadline_at_checkin;
      ctx->SetCheckInHook([cancel_at, deadline_at](ExecContext& c,
                                                   uint64_t ordinal) {
        if (cancel_at != 0 && ordinal == cancel_at) {
          c.RequestStop(StopCause::kCancelled);
        }
        if (deadline_at != 0 && ordinal == deadline_at) {
          c.RequestStop(StopCause::kDeadlineExceeded);
        }
      });
    }
    if (fail_charge_at != 0) {
      const uint64_t fail_at = fail_charge_at;
      ctx->SetChargeHook([fail_at](ExecContext&, size_t /*bytes*/,
                                   uint64_t ordinal) {
        return ordinal != fail_at;
      });
    }
  }
};

}  // namespace stj::test
