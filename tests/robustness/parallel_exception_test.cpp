#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/topology/parallel.h"

// Regression tests for exception propagation and edge behaviour of the
// worker fan-out primitive behind ParallelFindRelation/ParallelRelate. Before
// the Status/robustness work, a throwing worker thread took the whole process
// down via std::terminate.

namespace stj {
namespace {

struct WorkerFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

TEST(RunChunks, RethrowsWorkerExceptionAfterJoiningAll) {
  std::atomic<unsigned> completed{0};
  try {
    internal::RunChunks(4, 100, [&](unsigned worker, size_t, size_t) {
      if (worker == 2) throw WorkerFailure("worker 2 failed");
      completed.fetch_add(1);
    });
    FAIL() << "expected WorkerFailure to propagate";
  } catch (const WorkerFailure& e) {
    // The dynamic type and message survive the thread hop.
    EXPECT_STREQ(e.what(), "worker 2 failed");
  }
  // Every non-throwing worker ran to completion before the rethrow: the
  // primitive joins all threads, it does not abandon them.
  EXPECT_EQ(completed.load(), 3u);
}

TEST(RunChunks, SingleThreadedExceptionPropagatesDirectly) {
  EXPECT_THROW(
      internal::RunChunks(1, 10,
                          [](unsigned, size_t, size_t) {
                            throw WorkerFailure("inline");
                          }),
      WorkerFailure);
}

TEST(RunChunks, AllWorkersThrowingYieldsExactlyOneException) {
  unsigned caught = 0;
  try {
    internal::RunChunks(8, 64, [](unsigned worker, size_t, size_t) {
      throw WorkerFailure("worker " + std::to_string(worker));
    });
  } catch (const WorkerFailure&) {
    ++caught;
  }
  EXPECT_EQ(caught, 1u);
}

TEST(FirstError, CountsExceptionsDroppedByConcurrentWorkers) {
  // Three workers throw at the same instant (the barrier guarantees all are
  // in flight before any Capture runs): exactly one exception is held, the
  // other two are counted instead of vanishing.
  internal::FirstError error;
  std::barrier sync(3);
  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&error, &sync, w] {
      sync.arrive_and_wait();
      try {
        throw WorkerFailure("worker " + std::to_string(w));
      } catch (...) {
        error.Capture();
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(error.dropped_errors(), 2u);
  EXPECT_THROW(error.RethrowIfAny(), WorkerFailure);
}

TEST(RunChunks, ConcurrentWorkerFailuresReportTheDropCount) {
  // End-to-end flavour of the same regression: RethrowIfAny must surface
  // how many sibling exceptions were discarded (they are invisible to the
  // caller, who only sees the one rethrown failure).
  std::barrier sync(3);
  ::testing::internal::CaptureStderr();
  unsigned caught = 0;
  try {
    internal::RunChunks(3, 3, [&sync](unsigned worker, size_t, size_t) {
      sync.arrive_and_wait();
      throw WorkerFailure("worker " + std::to_string(worker));
    });
  } catch (const WorkerFailure&) {
    ++caught;
  }
  const std::string log = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(caught, 1u);
  EXPECT_NE(log.find("2 additional worker exception(s) dropped"),
            std::string::npos)
      << "log was: " << log;
}

TEST(RunChunks, ZeroTotalRunsNothing) {
  std::atomic<unsigned> calls{0};
  const unsigned used = internal::RunChunks(
      8, 0, [&](unsigned, size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(used, 0u);
  EXPECT_EQ(calls.load(), 0u);
}

TEST(RunChunks, ReportsOnlyWorkersThatRan) {
  // 10 items over 64 requested threads: only 10 single-item chunks exist.
  // The returned count must match so callers merge exactly the per-worker
  // state that was written, and the chunks must tile [0, total) exactly.
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;
  std::set<unsigned> workers;
  const unsigned used =
      internal::RunChunks(64, 10, [&](unsigned worker, size_t begin,
                                      size_t end) {
        std::lock_guard<std::mutex> lock(mu);
        workers.insert(worker);
        chunks.emplace_back(begin, end);
      });
  EXPECT_EQ(used, 10u);
  EXPECT_EQ(workers.size(), 10u);
  EXPECT_EQ(*workers.begin(), 0u);
  EXPECT_EQ(*workers.rbegin(), 9u);

  std::sort(chunks.begin(), chunks.end());
  size_t covered = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_EQ(begin, covered);
    EXPECT_LT(begin, end);
    covered = end;
  }
  EXPECT_EQ(covered, 10u);
}

TEST(RunChunks, SingleChunkRunsInline) {
  // With one thread the callback runs on the calling thread — observable via
  // thread-local state without any synchronisation.
  static thread_local int marker = 0;
  marker = 41;
  internal::RunChunks(1, 5, [](unsigned worker, size_t begin, size_t end) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 5u);
    ++marker;
  });
  EXPECT_EQ(marker, 42);
}

}  // namespace
}  // namespace stj
