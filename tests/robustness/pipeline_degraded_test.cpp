#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/datasets/scenarios.h"
#include "src/raster/april_io.h"
#include "src/topology/parallel.h"
#include "tests/robustness/corrupter.h"

// Degraded-mode correctness: when APRIL approximations are missing or flagged
// corrupt, the kApril/kPC pipelines must fall back to refinement for the
// affected pairs and still produce results identical to the approximation-free
// kOP2 ground truth, with the fallbacks surfaced in
// PipelineStats::fallback_refined.

namespace stj {
namespace {

std::string TempPath(const char* name) {
  // Pid-qualified: each test case is a separate ctest process and the cases
  // must not race on shared scratch files in TempDir.
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return std::string(::testing::TempDir()) + "/" +
         (info != nullptr ? info->name() : "unknown") + "_" +
         std::to_string(::getpid()) + "_" + name;
}

class PipelineDegradedTest : public ::testing::Test {
 protected:
  PipelineDegradedTest() {
    ScenarioOptions options;
    options.scale = 0.05;
    options.grid_order = 10;
    scenario_ = BuildScenario("OLE-OPE", options);
    ground_truth_ =
        ParallelFindRelation(Method::kOP2, scenario_.RView(), scenario_.SView(),
                             scenario_.candidates, /*num_threads=*/1);
  }

  void ExpectMatchesGroundTruthWithFallback(const ParallelJoinResult& result,
                                            const char* label) {
    ASSERT_EQ(result.relations.size(), ground_truth_.relations.size()) << label;
    for (size_t i = 0; i < result.relations.size(); ++i) {
      ASSERT_EQ(result.relations[i], ground_truth_.relations[i])
          << label << " pair " << i;
    }
    EXPECT_GT(result.stats.fallback_refined, 0u) << label;
    EXPECT_LE(result.stats.fallback_refined, result.stats.refined) << label;
  }

  ScenarioData scenario_;
  ParallelJoinResult ground_truth_;
};

TEST_F(PipelineDegradedTest, HealthyRunHasZeroFallbacks) {
  for (const Method method : {Method::kApril, Method::kPC}) {
    const ParallelJoinResult result =
        ParallelFindRelation(method, scenario_.RView(), scenario_.SView(),
                             scenario_.candidates, /*num_threads=*/2);
    EXPECT_EQ(result.stats.fallback_refined, 0u) << ToString(method);
  }
}

TEST_F(PipelineDegradedTest, FlaggedCorruptRecordsFallBackToRefinement) {
  // Mark every 3rd R and every 4th S approximation as corrupt, the way
  // LoadAprilFileDetailed does for records that fail their checksum.
  std::vector<AprilApproximation> r_april = scenario_.r_april;
  std::vector<AprilApproximation> s_april = scenario_.s_april;
  for (size_t i = 0; i < r_april.size(); i += 3) r_april[i].usable = false;
  for (size_t i = 0; i < s_april.size(); i += 4) s_april[i].usable = false;
  const DatasetView r_view{&scenario_.r.objects, &r_april};
  const DatasetView s_view{&scenario_.s.objects, &s_april};

  for (const Method method : {Method::kApril, Method::kPC}) {
    const ParallelJoinResult result = ParallelFindRelation(
        method, r_view, s_view, scenario_.candidates, /*num_threads=*/2);
    ExpectMatchesGroundTruthWithFallback(result, ToString(method));
  }
}

TEST_F(PipelineDegradedTest, MissingAprilVectorFallsBack) {
  // No approximations at all on the R side (e.g. the .april file was absent).
  const DatasetView r_view{&scenario_.r.objects, nullptr};
  for (const Method method : {Method::kApril, Method::kPC}) {
    const ParallelJoinResult result = ParallelFindRelation(
        method, r_view, scenario_.SView(), scenario_.candidates,
        /*num_threads=*/2);
    ExpectMatchesGroundTruthWithFallback(result, ToString(method));
  }
}

TEST_F(PipelineDegradedTest, ShortAprilVectorFallsBack) {
  // A truncated load yields a prefix; indices past its end must degrade, not
  // read out of bounds.
  std::vector<AprilApproximation> r_april(
      scenario_.r_april.begin(),
      scenario_.r_april.begin() + scenario_.r_april.size() / 2);
  const DatasetView r_view{&scenario_.r.objects, &r_april};
  const ParallelJoinResult result =
      ParallelFindRelation(Method::kPC, r_view, scenario_.SView(),
                           scenario_.candidates, /*num_threads=*/2);
  ExpectMatchesGroundTruthWithFallback(result, "short r_april");
}

TEST_F(PipelineDegradedTest, DiskCorruptionEndToEnd) {
  // Save the real R approximations, flip one payload byte in every 5th
  // record, reload through the corruption-safe reader, and join with the
  // damaged vector: results must still match ground truth exactly.
  const std::string path = TempPath("pipeline_degraded.april");
  ASSERT_TRUE(SaveAprilFileCompressed(path, scenario_.r_april));
  std::string bytes = test::ReadFileBytes(path);

  constexpr size_t kHeaderSize = 16;
  size_t off = kHeaderSize;
  size_t flipped = 0;
  for (size_t i = 0; i < scenario_.r_april.size(); ++i) {
    uint64_t payload_size = 0;
    ASSERT_LE(off + 16, bytes.size());
    std::memcpy(&payload_size, bytes.data() + off, sizeof payload_size);
    if (i % 5 == 0 && payload_size > 0) {
      bytes = test::WithFlippedByte(bytes, off + 16);  // first payload byte
      ++flipped;
    }
    off += 16 + payload_size;
  }
  ASSERT_GT(flipped, 0u);
  test::WriteFileBytes(path, bytes);

  std::vector<AprilApproximation> damaged;
  AprilLoadReport report;
  const Status status = LoadAprilFileDetailed(path, &damaged, &report);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(report.Degraded());
  EXPECT_EQ(report.corrupt, flipped);
  ASSERT_EQ(damaged.size(), scenario_.r_april.size());

  const DatasetView r_view{&scenario_.r.objects, &damaged};
  const ParallelJoinResult result =
      ParallelFindRelation(Method::kPC, r_view, scenario_.SView(),
                           scenario_.candidates, /*num_threads=*/2);
  ExpectMatchesGroundTruthWithFallback(result, "disk corruption");
  std::remove(path.c_str());
}

TEST_F(PipelineDegradedTest, PermissiveStoreLoadKeepsFilterDecisionsActive) {
  // Degradation must stay *isolated*: after a permissive load of a store
  // with a few corrupt records, the healthy majority still decides pairs at
  // the APRIL filter stage — corruption must not silently push the whole
  // join onto the refinement path. Save the R store, flip one payload byte
  // in every 7th record, reload through the permissive arena loader, and
  // join straight from the repaired store.
  const std::string path = TempPath("pipeline_store_degraded.april");
  ASSERT_TRUE(SaveAprilStoreCompressed(
      path, AprilStore::FromApproximations(scenario_.r_april)));
  std::string bytes = test::ReadFileBytes(path);

  constexpr size_t kHeaderSize = 16;
  size_t off = kHeaderSize;
  size_t flipped = 0;
  for (size_t i = 0; i < scenario_.r_april.size(); ++i) {
    uint64_t payload_size = 0;
    ASSERT_LE(off + 16, bytes.size());
    std::memcpy(&payload_size, bytes.data() + off, sizeof payload_size);
    if (i % 7 == 0 && payload_size > 0) {
      bytes = test::WithFlippedByte(bytes, off + 16);
      ++flipped;
    }
    off += 16 + payload_size;
  }
  ASSERT_GT(flipped, 0u);
  test::WriteFileBytes(path, bytes);

  AprilStore store;
  AprilLoadReport report;
  const Status status = LoadAprilStore(path, &store, &report);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(report.Degraded());
  EXPECT_EQ(report.corrupt, flipped);
  ASSERT_EQ(store.Count(), scenario_.r_april.size());

  const DatasetView r_view{&scenario_.r.objects, nullptr, &store};
  for (const Method method : {Method::kApril, Method::kPC}) {
    const ParallelJoinResult result = ParallelFindRelation(
        method, r_view, scenario_.SView(), scenario_.candidates,
        /*num_threads=*/2);
    ExpectMatchesGroundTruthWithFallback(result, ToString(method));
    // The healthy records kept the filter stage in play.
    EXPECT_GT(result.stats.decided_by_filter, 0u) << ToString(method);
  }
  std::remove(path.c_str());
}

TEST_F(PipelineDegradedTest, RelatePredicateDegradesExactly) {
  std::vector<AprilApproximation> r_april = scenario_.r_april;
  for (size_t i = 0; i < r_april.size(); i += 2) r_april[i].usable = false;
  const DatasetView r_view{&scenario_.r.objects, &r_april};

  for (const de9im::Relation predicate :
       {de9im::Relation::kIntersects, de9im::Relation::kInside}) {
    const ParallelRelateResult truth = ParallelRelate(
        Method::kOP2, scenario_.RView(), scenario_.SView(),
        scenario_.candidates, predicate, /*num_threads=*/1);
    const ParallelRelateResult degraded =
        ParallelRelate(Method::kPC, r_view, scenario_.SView(),
                       scenario_.candidates, predicate, /*num_threads=*/2);
    EXPECT_EQ(degraded.matches, truth.matches);
    EXPECT_GT(degraded.stats.fallback_refined, 0u);
  }
}

}  // namespace
}  // namespace stj
