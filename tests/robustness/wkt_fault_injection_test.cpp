#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "src/datasets/dataset_io.h"
#include "src/util/rng.h"
#include "tests/robustness/corrupter.h"
#include "tests/test_support.h"

// Fault injection against WKT ingestion: deterministic line manglings applied
// to every line of a valid dataset file. Strict loads must fail with a Status
// naming the file, 1-based line, and byte offset; permissive loads must
// triage every line into exactly one of accepted / repaired / skipped and
// keep the clean remainder.

namespace stj {
namespace {

std::string TempPath(const char* name) {
  // Each test case runs as its own ctest process against the shared TempDir;
  // a pid-qualified name keeps concurrently scheduled cases from racing on
  // the fixture files.
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return std::string(::testing::TempDir()) + "/" +
         (info != nullptr ? info->name() : "unknown") + "_" +
         std::to_string(::getpid()) + "_" + name;
}

struct Mangling {
  const char* name;
  std::function<std::string(const std::string&)> apply;
};

// All manglings that produce a parse error (not merely a repairable line).
const std::vector<Mangling>& ParseBreakingManglings() {
  static const std::vector<Mangling> kManglings = {
      {"truncate-midline",
       [](const std::string& line) { return line.substr(0, line.size() / 2); }},
      {"comma-to-semicolon",
       [](const std::string& line) {
         std::string out = line;
         out[out.find(',')] = ';';
         return out;
       }},
      {"drop-first-paren",
       [](const std::string& line) {
         std::string out = line;
         return out.erase(out.find('('), 1);
       }},
      {"letter-inside-number",
       [](const std::string& line) {
         std::string out = line;
         out.insert(out.find_first_of("0123456789") + 1, "x");
         return out;
       }},
  };
  return kManglings;
}

class WktFaultInjectionTest : public ::testing::Test {
 protected:
  WktFaultInjectionTest() {
    Rng rng(17);
    dataset_.name = "fault";
    dataset_.description = "fault-injection fixture";
    for (int i = 0; i < 6; ++i) {
      SpatialObject object;
      object.id = static_cast<uint32_t>(i);
      object.geometry = test::RandomBlob(
          &rng, Point{rng.Uniform(5, 95), rng.Uniform(5, 95)},
          rng.LogUniform(1.0, 6.0), 16, 0.3);
      dataset_.objects.push_back(std::move(object));
    }
    path_ = TempPath("wkt_fault_base.wkt");
    EXPECT_TRUE(SaveWktDataset(path_, dataset_));
    // SaveWktDataset writes one '#' header line, then one polygon per line.
    std::istringstream in(test::ReadFileBytes(path_));
    for (std::string line; std::getline(in, line);) lines_.push_back(line);
    EXPECT_EQ(lines_.size(), dataset_.objects.size() + 1);
    std::remove(path_.c_str());
  }

  // Writes the base file with polygon \p index replaced by mangled text and
  // returns the path. The mangled text lands on file line index + 2 (the
  // header comment is line 1).
  std::string WriteWithMangledLine(size_t index, const std::string& mangled) {
    std::string contents;
    for (size_t i = 0; i < lines_.size(); ++i) {
      contents += (i == index + 1) ? mangled : lines_[i];
      contents += '\n';
    }
    const std::string path = TempPath("wkt_fault_scratch.wkt");
    test::WriteFileBytes(path, contents);
    return path;
  }

  Dataset dataset_;
  std::string path_;
  std::vector<std::string> lines_;  // [0] is the header comment.
};

TEST_F(WktFaultInjectionTest, StrictStatusNamesFileLineAndOffset) {
  for (size_t i = 0; i < dataset_.objects.size(); ++i) {
    for (const Mangling& m : ParseBreakingManglings()) {
      const std::string path = WriteWithMangledLine(i, m.apply(lines_[i + 1]));
      Dataset loaded;
      LoadOptions options;  // strict by default
      const Status status = LoadWktDataset(path, "fault", options, &loaded);
      ASSERT_FALSE(status.ok()) << m.name << " line " << i;
      EXPECT_TRUE(loaded.objects.empty()) << m.name;
      EXPECT_EQ(status.file(), path) << m.name;
      ASSERT_TRUE(status.has_line()) << m.name;
      EXPECT_EQ(status.line(), i + 2) << m.name;  // header comment is line 1
      EXPECT_TRUE(status.has_offset()) << m.name;
      // The rendered message is what the CLI prints; it must carry the
      // file:line context so the user can jump to the bad row.
      const std::string rendered = status.ToString();
      EXPECT_NE(rendered.find(path + ":" + std::to_string(i + 2)),
                std::string::npos)
          << rendered;
      std::remove(path.c_str());
    }
  }
}

TEST_F(WktFaultInjectionTest, PermissiveKeepsCleanRemainder) {
  const size_t n = dataset_.objects.size();
  for (size_t i = 0; i < n; ++i) {
    for (const Mangling& m : ParseBreakingManglings()) {
      const std::string path = WriteWithMangledLine(i, m.apply(lines_[i + 1]));
      Dataset loaded;
      LoadOptions options;
      options.mode = LoadMode::kPermissive;
      LoadReport report;
      const Status status =
          LoadWktDataset(path, "fault", options, &loaded, &report);
      ASSERT_TRUE(status.ok()) << m.name << ": " << status.ToString();
      EXPECT_EQ(report.lines, n) << m.name;
      EXPECT_EQ(report.accepted + report.repaired + report.skipped,
                report.lines)
          << m.name;
      EXPECT_GE(report.skipped + report.repaired, 1u) << m.name;
      EXPECT_EQ(loaded.objects.size(), report.accepted + report.repaired)
          << m.name;
      EXPECT_GE(report.issues.size(), 1u) << m.name;
      EXPECT_EQ(report.issues[0].line, i + 2) << m.name;
      // Ids are reassigned densely over the surviving lines.
      for (size_t k = 0; k < loaded.objects.size(); ++k) {
        EXPECT_EQ(loaded.objects[k].id, static_cast<uint32_t>(k));
      }
      std::remove(path.c_str());
    }
  }
}

TEST_F(WktFaultInjectionTest, DuplicateVertexIsRepairedNotSkipped) {
  // Duplicating the first vertex parses fine but needs structural repair.
  const std::string& line = lines_[1];
  const size_t open = line.find("((") + 2;
  const size_t comma = line.find(',', open);
  const std::string vertex = line.substr(open, comma - open);
  const std::string mangled =
      line.substr(0, comma) + ", " + vertex + line.substr(comma);

  const std::string path = WriteWithMangledLine(0, mangled);
  Dataset loaded;
  LoadOptions options;
  options.mode = LoadMode::kPermissive;
  LoadReport report;
  ASSERT_TRUE(LoadWktDataset(path, "fault", options, &loaded, &report).ok());
  EXPECT_EQ(report.repaired, 1u);
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_EQ(report.accepted, dataset_.objects.size() - 1);
  ASSERT_EQ(loaded.objects.size(), dataset_.objects.size());
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].action, LineIssue::Action::kRepaired);
  // The repaired polygon must match the original geometry.
  EXPECT_EQ(loaded.objects[0].geometry.Outer(),
            dataset_.objects[0].geometry.Outer());

  // Strict mode accepts it too (parses fine; repair is permissive-only).
  Dataset strict;
  ASSERT_TRUE(LoadWktDataset(path, "fault", LoadOptions{}, &strict).ok());
  EXPECT_EQ(strict.objects.size(), dataset_.objects.size());
  std::remove(path.c_str());
}

TEST_F(WktFaultInjectionTest, MultipleBadLinesAllTriaged) {
  // Mangle polygons 0, 2, 4 at once (distinct manglings).
  std::string contents;
  const auto& manglings = ParseBreakingManglings();
  for (size_t i = 0; i < lines_.size(); ++i) {
    std::string line = lines_[i];
    if (i == 1) line = manglings[0].apply(line);
    if (i == 3) line = manglings[1].apply(line);
    if (i == 5) line = manglings[3].apply(line);
    contents += line + '\n';
  }
  const std::string path = TempPath("wkt_fault_multi.wkt");
  test::WriteFileBytes(path, contents);

  Dataset loaded;
  LoadOptions options;
  options.mode = LoadMode::kPermissive;
  LoadReport report;
  ASSERT_TRUE(LoadWktDataset(path, "fault", options, &loaded, &report).ok());
  EXPECT_EQ(report.lines, dataset_.objects.size());
  EXPECT_EQ(report.skipped, 3u);
  EXPECT_EQ(report.repaired, 0u);
  EXPECT_EQ(report.accepted, dataset_.objects.size() - 3);
  EXPECT_EQ(loaded.objects.size(), dataset_.objects.size() - 3);
  ASSERT_EQ(report.issues.size(), 3u);
  EXPECT_EQ(report.issues[0].line, 2u);
  EXPECT_EQ(report.issues[1].line, 4u);
  EXPECT_EQ(report.issues[2].line, 6u);

  // Strict mode stops at the FIRST bad line.
  Dataset strict;
  const Status status = LoadWktDataset(path, "fault", LoadOptions{}, &strict);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.line(), 2u);
  std::remove(path.c_str());
}

TEST_F(WktFaultInjectionTest, IssueCapKeepsCountingBeyondIt) {
  // Every polygon line mangled, cap of 2 retained issues.
  std::string contents;
  for (size_t i = 0; i < lines_.size(); ++i) {
    std::string line = lines_[i];
    if (i >= 1) line = ParseBreakingManglings()[1].apply(line);
    contents += line + '\n';
  }
  const std::string path = TempPath("wkt_fault_cap.wkt");
  test::WriteFileBytes(path, contents);

  Dataset loaded;
  LoadOptions options;
  options.mode = LoadMode::kPermissive;
  options.max_issues = 2;
  LoadReport report;
  ASSERT_TRUE(LoadWktDataset(path, "fault", options, &loaded, &report).ok());
  EXPECT_TRUE(loaded.objects.empty());
  EXPECT_EQ(report.skipped, dataset_.objects.size());
  EXPECT_EQ(report.issues.size(), 2u);
  EXPECT_EQ(report.issues_dropped, dataset_.objects.size() - 2);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace stj
