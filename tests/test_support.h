#pragma once

// Shared fixtures and helpers for the stjoin test suite.

#include <string>
#include <vector>

#include "src/datasets/blob.h"
#include "src/geometry/polygon.h"
#include "src/util/rng.h"

namespace stj::test {

/// Axis-aligned square polygon [x0,x1] x [y0,y1].
inline Polygon Square(double x0, double y0, double x1, double y1) {
  return Polygon(Ring({Point{x0, y0}, Point{x1, y0}, Point{x1, y1},
                       Point{x0, y1}}));
}

/// The unit square [0,1]^2.
inline Polygon UnitSquare() { return Square(0, 0, 1, 1); }

/// Square [x0,x1]^2 x [y0,y1] with a centred square hole of half-width hw.
inline Polygon SquareWithHole(double x0, double y0, double x1, double y1,
                              double hw) {
  const double cx = 0.5 * (x0 + x1);
  const double cy = 0.5 * (y0 + y1);
  Ring hole({Point{cx - hw, cy - hw}, Point{cx + hw, cy - hw},
             Point{cx + hw, cy + hw}, Point{cx - hw, cy + hw}});
  return Polygon(Ring({Point{x0, y0}, Point{x1, y0}, Point{x1, y1},
                       Point{x0, y1}}),
                 {std::move(hole)});
}

/// A simple triangle.
inline Polygon Triangle(Point a, Point b, Point c) {
  return Polygon(Ring({a, b, c}));
}

/// Random star-shaped blob for property tests.
inline Polygon RandomBlob(Rng* rng, Point center, double radius,
                          size_t vertices, double hole_probability = 0.0) {
  BlobParams params;
  params.center = center;
  params.mean_radius = radius;
  params.vertices = vertices;
  params.irregularity = rng->Uniform(0.2, 0.6);
  params.harmonics = static_cast<int>(rng->UniformInt(3, 6));
  params.hole_probability = hole_probability;
  return MakeBlob(rng, params);
}

}  // namespace stj::test
