#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/datasets/scenarios.h"
#include "src/raster/april_compressed.h"
#include "src/raster/april_store.h"
#include "src/topology/parallel.h"

// Equivalence of the staged SoA batch executor (batch_executor.h) with the
// pair-at-a-time oracle: for every batch size, queue depth, thread count and
// approximation storage form, the decision vector must be byte-identical to
// the batch_size=1 single-threaded run. The executor is a pure scheduling
// layer — only its queue telemetry may differ between runs.

namespace stj {
namespace {

class BatchPipelineTest : public ::testing::Test {
 protected:
  BatchPipelineTest() {
    ScenarioOptions options;
    options.scale = 0.05;
    options.grid_order = 10;
    scenario_ = BuildScenario("OLE-OPE", options);
    r_store_ = AprilStore::FromApproximations(scenario_.r_april);
    s_store_ = AprilStore::FromApproximations(scenario_.s_april);
    r_cstore_ = CompressedAprilStore::FromStore(r_store_);
    s_cstore_ = CompressedAprilStore::FromStore(s_store_);
  }

  DatasetView RCompressed() const {
    return DatasetView{&scenario_.r.objects, nullptr, nullptr, &r_cstore_};
  }
  DatasetView SCompressed() const {
    return DatasetView{&scenario_.s.objects, nullptr, nullptr, &s_cstore_};
  }

  ScenarioData scenario_;
  AprilStore r_store_;
  AprilStore s_store_;
  CompressedAprilStore r_cstore_;
  CompressedAprilStore s_cstore_;
};

TEST_F(BatchPipelineTest, BatchSizesAndThreadsAreByteIdentical) {
  ASSERT_GT(scenario_.candidates.size(), 100u);
  const ParallelJoinResult oracle = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      JoinOptions{.num_threads = 1, .batch_size = 1});
  ASSERT_TRUE(oracle.status.ok());
  for (const size_t batch_size : {size_t{7}, size_t{64}, size_t{4096}}) {
    for (const unsigned threads : {1u, 2u, 4u}) {
      const ParallelJoinResult batched = ParallelFindRelation(
          Method::kPC, scenario_.RView(), scenario_.SView(),
          scenario_.candidates,
          JoinOptions{.num_threads = threads, .batch_size = batch_size});
      ASSERT_TRUE(batched.status.ok());
      EXPECT_EQ(oracle.relations, batched.relations)
          << "batch_size=" << batch_size << " threads=" << threads;
      // Decision counters are schedule-independent.
      EXPECT_EQ(batched.stats.pairs, oracle.stats.pairs);
      EXPECT_EQ(batched.stats.refined, oracle.stats.refined);
      EXPECT_EQ(batched.stats.decided_by_filter,
                oracle.stats.decided_by_filter);
      EXPECT_EQ(batched.stats.decided_by_mbr, oracle.stats.decided_by_mbr);
      EXPECT_GT(batched.stats.batches, 0u);
    }
  }
}

TEST_F(BatchPipelineTest, AllMethodsAgreeWithOracleUnderBatching) {
  for (const Method method :
       {Method::kST2, Method::kOP2, Method::kApril, Method::kPC}) {
    const ParallelJoinResult oracle = ParallelFindRelation(
        method, scenario_.RView(), scenario_.SView(), scenario_.candidates,
        JoinOptions{.num_threads = 1, .batch_size = 1});
    const ParallelJoinResult batched = ParallelFindRelation(
        method, scenario_.RView(), scenario_.SView(), scenario_.candidates,
        JoinOptions{.num_threads = 4, .batch_size = 64});
    EXPECT_EQ(oracle.relations, batched.relations) << ToString(method);
  }
}

TEST_F(BatchPipelineTest, CompressedStoreBatchedMatchesFlatOracle) {
  // The decoded-record cache reroutes compressed filtering through the flat
  // SIMD kernels; decisions must match both the flat-storage oracle and the
  // cache-disabled (fused block-merge) compressed run.
  const ParallelJoinResult flat_oracle = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      JoinOptions{.num_threads = 1, .batch_size = 1});
  const ParallelJoinResult cached = ParallelFindRelation(
      Method::kPC, RCompressed(), SCompressed(), scenario_.candidates,
      JoinOptions{.num_threads = 4, .batch_size = 64});
  EXPECT_EQ(flat_oracle.relations, cached.relations);
  EXPECT_GT(cached.stats.decoded_hits + cached.stats.decoded_misses, 0u);
  EXPECT_EQ(cached.stats.decoded_corrupt, 0u);

  const ParallelJoinResult uncached = ParallelFindRelation(
      Method::kPC, RCompressed(), SCompressed(), scenario_.candidates,
      JoinOptions{.num_threads = 4,
                  .batch_size = 64,
                  .decoded_cache_bytes = 0});
  EXPECT_EQ(flat_oracle.relations, uncached.relations);
  EXPECT_EQ(uncached.stats.decoded_hits, 0u);
  EXPECT_EQ(uncached.stats.decoded_misses, 0u);
}

TEST_F(BatchPipelineTest, RelateBatchedMatchesOracle) {
  for (const de9im::Relation predicate :
       {de9im::Relation::kIntersects, de9im::Relation::kInside}) {
    const ParallelRelateResult oracle = ParallelRelate(
        Method::kPC, scenario_.RView(), scenario_.SView(),
        scenario_.candidates, predicate,
        JoinOptions{.num_threads = 1, .batch_size = 1});
    for (const size_t batch_size : {size_t{7}, size_t{256}}) {
      const ParallelRelateResult batched = ParallelRelate(
          Method::kPC, scenario_.RView(), scenario_.SView(),
          scenario_.candidates, predicate,
          JoinOptions{.num_threads = 4, .batch_size = batch_size});
      EXPECT_EQ(oracle.matches, batched.matches)
          << ToString(predicate) << " batch_size=" << batch_size;
    }
  }
}

TEST_F(BatchPipelineTest, TinyQueueDepthStillCompletes) {
  // queue_depth=1 maximises back-pressure: producers must help-drain to make
  // room. The run must still complete with identical decisions.
  const ParallelJoinResult oracle = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      JoinOptions{.num_threads = 1, .batch_size = 1});
  const ParallelJoinResult squeezed = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      JoinOptions{.num_threads = 4, .batch_size = 16, .queue_depth = 1});
  ASSERT_TRUE(squeezed.status.ok());
  EXPECT_EQ(oracle.relations, squeezed.relations);
  EXPECT_LE(squeezed.stats.queue_max_depth, 1u);
}

TEST_F(BatchPipelineTest, BatchLargerThanInputIsOneBatch) {
  const std::vector<CandidatePair> few(scenario_.candidates.begin(),
                                       scenario_.candidates.begin() + 10);
  const ParallelJoinResult oracle =
      ParallelFindRelation(Method::kPC, scenario_.RView(), scenario_.SView(),
                           few, JoinOptions{.num_threads = 1, .batch_size = 1});
  const ParallelJoinResult batched = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), few,
      JoinOptions{.num_threads = 4, .batch_size = 4096});
  EXPECT_EQ(oracle.relations, batched.relations);
  EXPECT_EQ(batched.stats.batches, 1u);
}

TEST_F(BatchPipelineTest, QueueTelemetryIsConsistent) {
  const ParallelJoinResult batched = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      JoinOptions{.num_threads = 4, .batch_size = 32, .queue_depth = 4});
  ASSERT_TRUE(batched.status.ok());
  // Every pushed refinement batch is drained on a completed run.
  EXPECT_EQ(batched.stats.batches_enqueued, batched.stats.batches_dequeued);
  EXPECT_LE(batched.stats.queue_max_depth, 4u);
  // Every batch formed covers each scheduled pair exactly once.
  EXPECT_EQ(batched.stats.pairs, scenario_.candidates.size());
  // kPC leaves some pairs undetermined on this scenario, so refinement
  // batches must actually have flowed through the queue.
  ASSERT_GT(batched.stats.refined, 0u);
  EXPECT_GT(batched.stats.batches_enqueued, 0u);
}

TEST_F(BatchPipelineTest, TimeStagesAccountsBothStages) {
  const ParallelJoinResult timed = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      JoinOptions{.num_threads = 2, .time_stages = true, .batch_size = 64});
  EXPECT_GT(timed.stats.filter_seconds + timed.stats.refine_seconds, 0.0);
}

}  // namespace
}  // namespace stj
