// Soundness of the raster-only find-relation filter (Algorithm 1): a
// definite answer must equal the exact DE-9IM relation, and a candidate set
// must contain it. Exercised over thousands of generated pairs covering all
// MBR configurations and relation types.

#include "src/topology/find_relation.h"

#include <gtest/gtest.h>

#include <map>

#include "src/datasets/tessellation.h"
#include "src/de9im/relate_engine.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace stj {
namespace {

using de9im::FindRelationExact;
using de9im::Relation;

class FindRelationTest : public ::testing::Test {
 protected:
  FindRelationTest()
      : grid_(Box::Of(Point{0, 0}, Point{100, 100}), 9), builder_(&grid_) {}

  // Asserts the filter decision is sound for the pair and returns whether it
  // was definite.
  bool CheckPair(const Polygon& r, const Polygon& s) {
    const AprilApproximation ra = builder_.Build(r);
    const AprilApproximation sa = builder_.Build(s);
    const FilterDecision decision =
        FindRelationFilter(r.Bounds(), ra, s.Bounds(), sa);
    const Relation exact = FindRelationExact(r, s);
    if (decision.definite) {
      EXPECT_EQ(decision.relation, exact)
          << "definite filter answer contradicts DE-9IM";
      return true;
    }
    EXPECT_TRUE(decision.candidates.Contains(exact))
        << "true relation " << ToString(exact) << " missing from candidates";
    // Refinement with the narrowed candidates must reproduce the exact
    // relation (the candidate order is specific-to-general).
    EXPECT_EQ(de9im::MostSpecificRelation(de9im::RelateMatrix(r, s),
                                          decision.candidates),
              exact);
    return false;
  }

  RasterGrid grid_;
  AprilBuilder builder_;
};

TEST_F(FindRelationTest, MbrDisjointPairs) {
  const Polygon a = test::Square(0, 0, 10, 10);
  const Polygon b = test::Square(20, 20, 30, 30);
  const FilterDecision d = FindRelationFilter(
      a.Bounds(), builder_.Build(a), b.Bounds(), builder_.Build(b));
  EXPECT_TRUE(d.definite);
  EXPECT_EQ(d.relation, Relation::kDisjoint);
  EXPECT_EQ(d.stage, DecisionStage::kMbrFilter);
}

TEST_F(FindRelationTest, CrossMbrsDecidedWithoutLists) {
  const Polygon wide = test::Square(0, 40, 100, 60);
  const Polygon tall = test::Square(40, 0, 60, 100);
  const FilterDecision d = FindRelationFilter(
      wide.Bounds(), builder_.Build(wide), tall.Bounds(), builder_.Build(tall));
  EXPECT_TRUE(d.definite);
  EXPECT_EQ(d.relation, Relation::kIntersects);
  EXPECT_EQ(d.stage, DecisionStage::kMbrFilter);
  EXPECT_EQ(FindRelationExact(wide, tall), Relation::kIntersects);
}

TEST_F(FindRelationTest, CanonicalFixturePairs) {
  const Polygon square = test::Square(20, 20, 60, 60);
  const Polygon inner = test::Square(30, 30, 50, 50);
  const Polygon shifted = test::Square(40, 40, 80, 80);
  const Polygon touching = test::Square(60, 20, 90, 60);
  const Polygon donut = test::SquareWithHole(10, 10, 90, 90, 20);
  const Polygon filler = test::Square(30, 30, 70, 70);  // fills the hole

  CheckPair(square, square);
  CheckPair(inner, square);
  CheckPair(square, inner);
  CheckPair(square, shifted);
  CheckPair(square, touching);
  CheckPair(filler, donut);
  CheckPair(donut, filler);
  CheckPair(donut, test::Square(10, 10, 90, 90));
}

TEST_F(FindRelationTest, PropertySweepRandomBlobs) {
  Rng rng(201);
  std::map<Relation, int> seen;
  int definite = 0;
  const int rounds = 400;
  for (int i = 0; i < rounds; ++i) {
    // Mix of configurations: random, nested, duplicated, touching.
    const Point c1{rng.Uniform(20, 80), rng.Uniform(20, 80)};
    const Polygon a = test::RandomBlob(
        &rng, c1, rng.LogUniform(1.0, 15.0),
        static_cast<size_t>(rng.UniformInt(6, 120)), 0.25);
    Polygon b;
    const double mix = rng.NextDouble();
    if (mix < 0.2) {
      b = test::RandomBlob(&rng, Point{rng.Uniform(20, 80), rng.Uniform(20, 80)},
                           rng.LogUniform(1.0, 15.0),
                           static_cast<size_t>(rng.UniformInt(6, 120)), 0.25);
    } else if (mix < 0.4) {
      // Nearby: likely overlapping or touching MBRs.
      b = test::RandomBlob(
          &rng, Point{c1.x + rng.Uniform(-5, 5), c1.y + rng.Uniform(-5, 5)},
          rng.LogUniform(1.0, 10.0),
          static_cast<size_t>(rng.UniformInt(6, 120)), 0.25);
    } else if (mix < 0.55) {
      b = ScaleAbout(a, c1, rng.Uniform(0.3, 0.9));  // nested
    } else if (mix < 0.7) {
      b = ScaleAbout(a, c1, rng.Uniform(1.1, 1.8));  // containing
    } else if (mix < 0.8) {
      b = a;  // equal
    } else if (mix < 0.9 && !a.Holes().empty()) {
      b = Polygon(a.Holes()[0]);  // hole filler: meets
    } else {
      b = FillHoles(a);  // covers twin (equals if no holes)
    }
    const Relation exact = FindRelationExact(a, b);
    ++seen[exact];
    if (CheckPair(a, b)) ++definite;
  }
  // The sweep must actually exercise a diverse relation mix.
  EXPECT_GE(seen.size(), 5u) << "sweep degenerated";
  // And the filter must decide a decent share without refinement.
  EXPECT_GT(definite, rounds / 4);
}

TEST_F(FindRelationTest, PropertySweepTessellation) {
  Rng rng(203);
  TessellationParams params;
  params.region = Box::Of(Point{5, 5}, Point{95, 95});
  params.cols = 6;
  params.rows = 6;
  params.edge_points = 5;
  const NestedTessellation nested = MakeNestedTessellation(&rng, params, 3);
  // Fine vs coarse cells: inside / covered-by / meets / disjoint mix with
  // bit-exact shared boundaries.
  for (size_t f = 0; f < nested.fine.size(); f += 3) {
    for (size_t c = 0; c < nested.coarse.size(); ++c) {
      if (!nested.fine[f].Bounds().Intersects(nested.coarse[c].Bounds())) {
        continue;
      }
      CheckPair(nested.fine[f], nested.coarse[c]);
      CheckPair(nested.coarse[c], nested.fine[f]);
    }
  }
  // Fine vs fine neighbours: meets.
  for (size_t f = 0; f + 1 < nested.fine.size(); f += 5) {
    CheckPair(nested.fine[f], nested.fine[f + 1]);
  }
}

}  // namespace
}  // namespace stj
