#include "src/topology/intermediate_filters.h"

#include <gtest/gtest.h>

#include "src/raster/april.h"
#include "tests/test_support.h"

namespace stj {
namespace {

using de9im::Relation;

class IntermediateFilterTest : public ::testing::Test {
 protected:
  IntermediateFilterTest()
      : grid_(Box::Of(Point{0, 0}, Point{100, 100}), 9), builder_(&grid_) {}

  AprilApproximation April(const Polygon& poly) {
    return builder_.Build(poly);
  }

  RasterGrid grid_;
  AprilBuilder builder_;
};

TEST_F(IntermediateFilterTest, OutcomeHelpers) {
  EXPECT_TRUE(IsDefinite(IFOutcome::kDisjoint));
  EXPECT_TRUE(IsDefinite(IFOutcome::kCovers));
  EXPECT_FALSE(IsDefinite(IFOutcome::kRefineEquals));
  EXPECT_EQ(DefiniteRelation(IFOutcome::kInside), Relation::kInside);
  EXPECT_EQ(CandidatesOf(IFOutcome::kDisjoint),
            (de9im::RelationSet{Relation::kDisjoint}));
  EXPECT_EQ(CandidatesOf(IFOutcome::kRefineCoveredBy),
            (de9im::RelationSet{Relation::kCoveredBy, Relation::kIntersects}));
  EXPECT_EQ(CandidatesOf(IFOutcome::kRefineAllContains).Count(), 5);
}

TEST_F(IntermediateFilterTest, IFEqualsIdenticalObject) {
  const Polygon square = test::Square(10, 10, 60, 60);
  const AprilApproximation april = April(square);
  // Identical C lists: forwarded to refinement with the equals set.
  EXPECT_EQ(IFEquals(april, april), IFOutcome::kRefineEquals);
}

TEST_F(IntermediateFilterTest, IFEqualsDetectsCoveredByDefinitely) {
  // A plus-shape inside a square, equal MBRs: the plus's cells all sit in
  // the square's full cells.
  const Polygon square = test::Square(10, 10, 60, 60);
  Ring plus({Point{30, 10}, Point{40, 10}, Point{40, 30}, Point{60, 30},
             Point{60, 40}, Point{40, 40}, Point{40, 60}, Point{30, 60},
             Point{30, 40}, Point{10, 40}, Point{10, 30}, Point{30, 30}});
  const Polygon plus_poly{Ring(plus)};
  ASSERT_EQ(plus_poly.Bounds(), square.Bounds());
  const IFOutcome outcome = IFEquals(April(plus_poly), April(square));
  // The plus touches its MBR boundary only at four arms; those cells are
  // partial cells of the square too, so the filter may or may not decide.
  // Both covered-by (definite) and its refinement are sound outcomes here;
  // what is NOT acceptable is covers/intersects/meets.
  EXPECT_TRUE(outcome == IFOutcome::kCoveredBy ||
              outcome == IFOutcome::kRefineCoveredBy ||
              outcome == IFOutcome::kRefineEquals)
      << ToString(outcome);
  const IFOutcome mirrored = IFEquals(April(square), April(plus_poly));
  EXPECT_TRUE(mirrored == IFOutcome::kCovers ||
              mirrored == IFOutcome::kRefineCovers ||
              mirrored == IFOutcome::kRefineEquals)
      << ToString(mirrored);
}

TEST_F(IntermediateFilterTest, IFInsideDeepContainmentIsDefinite) {
  const Polygon outer = test::Square(10, 10, 90, 90);
  const Polygon inner = test::Square(45, 45, 55, 55);
  EXPECT_EQ(IFInside(April(inner), April(outer)), IFOutcome::kInside);
  EXPECT_EQ(IFContains(April(outer), April(inner)), IFOutcome::kContains);
}

TEST_F(IntermediateFilterTest, IFInsideDisjointDetection) {
  // MBR of r inside MBR of s, but r sits in s's (MBR-covered) empty corner.
  Ring l_shape({Point{10, 10}, Point{90, 10}, Point{90, 20}, Point{20, 20},
                Point{20, 90}, Point{10, 90}});
  const Polygon l_poly{Ring(l_shape)};
  const Polygon small = test::Square(60, 60, 70, 70);
  ASSERT_TRUE(l_poly.Bounds().Contains(small.Bounds()));
  EXPECT_EQ(IFInside(April(small), April(l_poly)), IFOutcome::kDisjoint);
  EXPECT_EQ(IFContains(April(l_poly), April(small)), IFOutcome::kDisjoint);
}

TEST_F(IntermediateFilterTest, IFInsideIntersectionIsDefinite) {
  // r pokes from s's interior across its boundary but stays in s's MBR.
  Ring l_shape({Point{10, 10}, Point{90, 10}, Point{90, 20}, Point{20, 20},
                Point{20, 90}, Point{10, 90}});
  const Polygon l_poly{Ring(l_shape)};
  const Polygon crossing = test::Square(15, 15, 40, 40);  // straddles the arm
  ASSERT_TRUE(l_poly.Bounds().Contains(crossing.Bounds()));
  EXPECT_EQ(IFInside(April(crossing), April(l_poly)), IFOutcome::kIntersects);
}

TEST_F(IntermediateFilterTest, IFIntersectsThreeOutcomes) {
  const Polygon a = test::Square(10, 10, 50, 50);
  const Polygon b = test::Square(30, 30, 70, 70);  // deep overlap
  EXPECT_EQ(IFIntersects(April(a), April(b)), IFOutcome::kIntersects);

  const Polygon far_apart = test::Square(49.9, 49.9, 90, 90);
  // Shifted so MBRs overlap marginally but C lists may or may not overlap;
  // just require soundness: never a definite wrong answer.
  const IFOutcome outcome = IFIntersects(April(a), April(far_apart));
  EXPECT_TRUE(outcome == IFOutcome::kIntersects ||
              outcome == IFOutcome::kRefineDisjointMeetsIntersects ||
              outcome == IFOutcome::kDisjoint)
      << ToString(outcome);

  // Clearly separated C lists within overlapping MBRs.
  const Polygon tri1 =
      test::Triangle(Point{10, 10}, Point{45, 10}, Point{10, 45});
  const Polygon tri2 =
      test::Triangle(Point{90, 90}, Point{55, 90}, Point{90, 55});
  EXPECT_EQ(IFIntersects(April(tri1), April(tri2)), IFOutcome::kDisjoint);
}

TEST_F(IntermediateFilterTest, ThinObjectsWithEmptyPListsStayInconclusive) {
  // Slivers produce no full cells, so P-based tests cannot fire.
  const Polygon sliver_r =
      test::Triangle(Point{20, 20}, Point{80, 20.02}, Point{20, 20.04});
  const Polygon outer = test::Square(10, 10, 90, 90);
  const AprilApproximation sliver_april = April(sliver_r);
  ASSERT_TRUE(sliver_april.progressive.Empty());
  const IFOutcome outcome = IFInside(sliver_april, April(outer));
  // The sliver is truly inside, but only refinement can prove it.
  EXPECT_TRUE(outcome == IFOutcome::kInside ||
              outcome == IFOutcome::kRefineInside ||
              outcome == IFOutcome::kRefineAllInside)
      << ToString(outcome);
}

TEST_F(IntermediateFilterTest, EmptyProgressiveOfContainerForcesFullRefine) {
  // s is a thin ring-like shape: s.P is empty, so IFInside cannot use it.
  Ring thin_frame({Point{10, 10}, Point{90, 10}, Point{90, 90}, Point{10, 90}});
  Ring frame_hole({Point{10.5, 10.5}, Point{89.5, 10.5}, Point{89.5, 89.5},
                   Point{10.5, 89.5}});
  const Polygon frame(thin_frame, {frame_hole});
  const Polygon inner = test::Square(40, 40, 60, 60);
  const AprilApproximation frame_april = April(frame);
  const IFOutcome outcome = IFInside(April(inner), frame_april);
  // inner is inside frame's MBR but actually in the hole: disjoint. The
  // filter may detect it via C lists or leave it to refinement.
  EXPECT_TRUE(outcome == IFOutcome::kDisjoint ||
              outcome == IFOutcome::kRefineDisjointMeetsIntersects ||
              outcome == IFOutcome::kRefineAllInside)
      << ToString(outcome);
}

}  // namespace
}  // namespace stj
