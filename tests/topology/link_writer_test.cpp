#include "src/topology/link_writer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace stj {
namespace {

using de9im::Relation;

TEST(LinkWriter, GeoSparqlPropertyMapping) {
  EXPECT_STREQ(GeoSparqlProperty(Relation::kEquals), "geo:sfEquals");
  EXPECT_STREQ(GeoSparqlProperty(Relation::kInside), "geo:sfWithin");
  EXPECT_STREQ(GeoSparqlProperty(Relation::kCoveredBy), "geo:sfWithin");
  EXPECT_STREQ(GeoSparqlProperty(Relation::kContains), "geo:sfContains");
  EXPECT_STREQ(GeoSparqlProperty(Relation::kCovers), "geo:sfContains");
  EXPECT_STREQ(GeoSparqlProperty(Relation::kMeets), "geo:sfTouches");
  EXPECT_STREQ(GeoSparqlProperty(Relation::kIntersects), "geo:sfIntersects");
}

TEST(LinkWriter, WritesTriplesAndSkipsDisjoint) {
  const std::string path =
      std::string(::testing::TempDir()) + "/links_test.nt";
  const std::vector<TopologyLink> links = {
      {CandidatePair{1, 2}, Relation::kInside},
      {CandidatePair{3, 4}, Relation::kDisjoint},  // skipped
      {CandidatePair{5, 6}, Relation::kMeets},
  };
  ASSERT_TRUE(WriteNTriples(path, "http://ex.org/lake/", "http://ex.org/park/",
                            links));
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  const std::string text = content.str();
  EXPECT_NE(text.find("@prefix geo:"), std::string::npos);
  EXPECT_NE(
      text.find(
          "<http://ex.org/lake/1> geo:sfWithin <http://ex.org/park/2> ."),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "<http://ex.org/lake/5> geo:sfTouches <http://ex.org/park/6> ."),
      std::string::npos);
  EXPECT_EQ(text.find("lake/3"), std::string::npos);
  std::remove(path.c_str());
}

TEST(LinkWriter, FailsOnUnwritablePath) {
  EXPECT_FALSE(WriteNTriples("/nonexistent-dir/links.nt", "a/", "b/", {}));
}

}  // namespace
}  // namespace stj
