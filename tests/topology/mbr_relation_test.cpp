#include "src/topology/mbr_relation.h"

#include <gtest/gtest.h>

namespace stj {
namespace {

using de9im::Relation;
using de9im::RelationSet;

Box MakeBox(double x0, double y0, double x1, double y1) {
  return Box::Of(Point{x0, y0}, Point{x1, y1});
}

TEST(MbrCandidates, DisjointAndCrossAreSingletons) {
  EXPECT_EQ(MbrCandidates(BoxRelation::kDisjoint),
            (RelationSet{Relation::kDisjoint}));
  EXPECT_EQ(MbrCandidates(BoxRelation::kCross),
            (RelationSet{Relation::kIntersects}));
}

TEST(MbrCandidates, EqualExcludesStrictContainmentAndDisjoint) {
  const RelationSet set = MbrCandidates(BoxRelation::kEqual);
  EXPECT_TRUE(set.Contains(Relation::kEquals));
  EXPECT_TRUE(set.Contains(Relation::kCoveredBy));
  EXPECT_TRUE(set.Contains(Relation::kCovers));
  EXPECT_TRUE(set.Contains(Relation::kMeets));
  EXPECT_TRUE(set.Contains(Relation::kIntersects));
  EXPECT_FALSE(set.Contains(Relation::kInside));
  EXPECT_FALSE(set.Contains(Relation::kContains));
  EXPECT_FALSE(set.Contains(Relation::kDisjoint));
}

TEST(MbrCandidates, NestedMbrExcludesReverseContainment) {
  const RelationSet r_in_s = MbrCandidates(BoxRelation::kRInsideS);
  EXPECT_TRUE(r_in_s.Contains(Relation::kInside));
  EXPECT_TRUE(r_in_s.Contains(Relation::kCoveredBy));
  EXPECT_FALSE(r_in_s.Contains(Relation::kContains));
  EXPECT_FALSE(r_in_s.Contains(Relation::kCovers));
  EXPECT_FALSE(r_in_s.Contains(Relation::kEquals));

  const RelationSet s_in_r = MbrCandidates(BoxRelation::kSInsideR);
  EXPECT_TRUE(s_in_r.Contains(Relation::kContains));
  EXPECT_FALSE(s_in_r.Contains(Relation::kInside));
}

TEST(MbrCandidates, OverlapKeepsOnlyNonContainment) {
  const RelationSet set = MbrCandidates(BoxRelation::kOverlap);
  EXPECT_EQ(set.Count(), 3);
  EXPECT_TRUE(set.Contains(Relation::kDisjoint));
  EXPECT_TRUE(set.Contains(Relation::kMeets));
  EXPECT_TRUE(set.Contains(Relation::kIntersects));
}

TEST(MbrCandidates, ConcreteBoxOverloadMatchesClassification) {
  const Box a = MakeBox(0, 0, 10, 10);
  const Box b = MakeBox(2, 2, 8, 8);
  EXPECT_EQ(MbrCandidates(a, b), MbrCandidates(BoxRelation::kSInsideR));
  EXPECT_EQ(MbrCandidates(b, a), MbrCandidates(BoxRelation::kRInsideS));
  EXPECT_EQ(MbrCandidates(a, a), MbrCandidates(BoxRelation::kEqual));
}

}  // namespace
}  // namespace stj
