#include "src/topology/parallel.h"

#include <gtest/gtest.h>

#include "src/datasets/scenarios.h"

namespace stj {
namespace {

class ParallelTest : public ::testing::Test {
 protected:
  ParallelTest() {
    ScenarioOptions options;
    options.scale = 0.05;
    options.grid_order = 10;
    scenario_ = BuildScenario("OLE-OPE", options);
  }
  ScenarioData scenario_;
};

TEST_F(ParallelTest, MatchesSerialFindRelation) {
  ASSERT_FALSE(scenario_.candidates.empty());
  const ParallelJoinResult serial = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      /*num_threads=*/1);
  const ParallelJoinResult parallel = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      /*num_threads=*/4);
  ASSERT_EQ(serial.relations.size(), parallel.relations.size());
  for (size_t i = 0; i < serial.relations.size(); ++i) {
    ASSERT_EQ(serial.relations[i], parallel.relations[i]) << i;
  }
  // Merged counters must add up regardless of the split.
  EXPECT_EQ(parallel.stats.pairs, scenario_.candidates.size());
  EXPECT_EQ(parallel.stats.decided_by_mbr + parallel.stats.decided_by_filter +
                parallel.stats.refined,
            scenario_.candidates.size());
  EXPECT_EQ(parallel.stats.refined, serial.stats.refined);
}

TEST_F(ParallelTest, MatchesSerialRelate) {
  const ParallelRelateResult serial = ParallelRelate(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      de9im::Relation::kInside, /*num_threads=*/1);
  const ParallelRelateResult parallel = ParallelRelate(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      de9im::Relation::kInside, /*num_threads=*/3);
  EXPECT_EQ(serial.matches, parallel.matches);
}

TEST_F(ParallelTest, EmptyPairListIsFine) {
  const ParallelJoinResult result =
      ParallelFindRelation(Method::kPC, scenario_.RView(), scenario_.SView(),
                           {}, /*num_threads=*/8);
  EXPECT_TRUE(result.relations.empty());
  EXPECT_EQ(result.stats.pairs, 0u);
}

TEST_F(ParallelTest, MoreThreadsThanPairs) {
  const std::vector<CandidatePair> few(scenario_.candidates.begin(),
                                       scenario_.candidates.begin() + 3);
  const ParallelJoinResult result = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), few,
      /*num_threads=*/64);
  EXPECT_EQ(result.relations.size(), 3u);
  EXPECT_EQ(result.stats.pairs, 3u);
}

TEST_F(ParallelTest, ManyThreadsMatchSerialWithWorkStealing) {
  // With 8 workers and 64-pair blocks the candidate list splits into many
  // dynamically claimed blocks; results must still land at the original
  // pair positions.
  const ParallelJoinResult serial = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      /*num_threads=*/1);
  const ParallelJoinResult parallel = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      /*num_threads=*/8);
  EXPECT_EQ(serial.relations, parallel.relations);
  EXPECT_EQ(serial.stats.refined, parallel.stats.refined);
  EXPECT_EQ(serial.stats.decided_by_filter, parallel.stats.decided_by_filter);
}

TEST_F(ParallelTest, TimeStagesPlumbedThroughWorkers) {
  // Workers used to construct Pipeline with the default flag, so parallel
  // stage timings were silently zero. With the flag plumbed, a parallel
  // timed run must report nonzero stage seconds...
  const ParallelJoinResult timed = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      /*num_threads=*/2, /*time_stages=*/true);
  EXPECT_GT(timed.stats.filter_seconds + timed.stats.refine_seconds, 0.0);
  // ...and an untimed run must stay at exactly zero (timers off).
  const ParallelJoinResult untimed = ParallelFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      /*num_threads=*/2);
  EXPECT_EQ(untimed.stats.filter_seconds, 0.0);
  EXPECT_EQ(untimed.stats.refine_seconds, 0.0);
  EXPECT_EQ(timed.stats.refined, untimed.stats.refined);
}

TEST_F(ParallelTest, TimeStagesPlumbedThroughRelate) {
  const ParallelRelateResult timed = ParallelRelate(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      de9im::Relation::kInside, /*num_threads=*/2, /*time_stages=*/true);
  EXPECT_GT(timed.stats.filter_seconds + timed.stats.refine_seconds, 0.0);
}

TEST_F(ParallelTest, AllMethodsWorkInParallel) {
  const std::vector<CandidatePair> sample(
      scenario_.candidates.begin(),
      scenario_.candidates.begin() +
          std::min<size_t>(scenario_.candidates.size(), 200));
  const ParallelJoinResult reference = ParallelFindRelation(
      Method::kST2, scenario_.RView(), scenario_.SView(), sample, 2);
  for (const Method method : {Method::kOP2, Method::kApril, Method::kPC}) {
    const ParallelJoinResult result = ParallelFindRelation(
        method, scenario_.RView(), scenario_.SView(), sample, 2);
    EXPECT_EQ(result.relations, reference.relations) << ToString(method);
  }
}

}  // namespace
}  // namespace stj
