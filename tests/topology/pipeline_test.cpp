// The four pipelines must return identical relations on identical inputs;
// they differ only in how much work they defer to refinement.

#include "src/topology/pipeline.h"

#include <gtest/gtest.h>

#include "src/datasets/scenarios.h"
#include "src/de9im/relate_engine.h"
#include "tests/test_support.h"

namespace stj {
namespace {

using de9im::Relation;

class PipelineTest : public ::testing::Test {
 protected:
  // Builds index-aligned dataset views over two polygon collections.
  void Setup(std::vector<Polygon> r_polys, std::vector<Polygon> s_polys,
             uint32_t grid_order = 9) {
    for (uint32_t i = 0; i < r_polys.size(); ++i) {
      r_objects_.push_back(SpatialObject{i, std::move(r_polys[i])});
    }
    for (uint32_t i = 0; i < s_polys.size(); ++i) {
      s_objects_.push_back(SpatialObject{i, std::move(s_polys[i])});
    }
    Box space;
    for (const auto& o : r_objects_) space.Expand(o.geometry.Bounds());
    for (const auto& o : s_objects_) space.Expand(o.geometry.Bounds());
    const RasterGrid grid(space, grid_order);
    const AprilBuilder builder(&grid);
    for (const auto& o : r_objects_) r_april_.push_back(builder.Build(o.geometry));
    for (const auto& o : s_objects_) s_april_.push_back(builder.Build(o.geometry));
  }

  DatasetView RView() { return DatasetView{&r_objects_, &r_april_}; }
  DatasetView SView() { return DatasetView{&s_objects_, &s_april_}; }

  std::vector<SpatialObject> r_objects_;
  std::vector<SpatialObject> s_objects_;
  std::vector<AprilApproximation> r_april_;
  std::vector<AprilApproximation> s_april_;
};

TEST_F(PipelineTest, AllMethodsAgreeOnFixtureMatrix) {
  // A matrix of shapes covering every relation.
  std::vector<Polygon> shapes = {
      test::Square(10, 10, 30, 30),
      test::Square(15, 15, 25, 25),            // inside the first
      test::Square(10, 10, 30, 30),            // equal to the first
      test::Square(30, 10, 50, 30),            // meets the first along an edge
      test::Square(25, 25, 45, 45),            // overlaps the first
      test::Square(70, 70, 90, 90),            // disjoint from the first
      test::SquareWithHole(5, 5, 35, 35, 10),  // donut around things
      test::Square(0, 18, 60, 22),             // wide bar (cross MBRs)
  };
  Setup(shapes, shapes);

  Pipeline st2(Method::kST2, RView(), SView());
  Pipeline op2(Method::kOP2, RView(), SView());
  Pipeline april(Method::kApril, RView(), SView());
  Pipeline pc(Method::kPC, RView(), SView());

  for (uint32_t i = 0; i < r_objects_.size(); ++i) {
    for (uint32_t j = 0; j < s_objects_.size(); ++j) {
      const Relation expected = de9im::FindRelationExact(
          r_objects_[i].geometry, s_objects_[j].geometry);
      EXPECT_EQ(st2.FindRelation(i, j), expected) << "ST2 " << i << "," << j;
      EXPECT_EQ(op2.FindRelation(i, j), expected) << "OP2 " << i << "," << j;
      EXPECT_EQ(april.FindRelation(i, j), expected)
          << "APRIL " << i << "," << j;
      EXPECT_EQ(pc.FindRelation(i, j), expected) << "P+C " << i << "," << j;
    }
  }
}

TEST_F(PipelineTest, StatsTrackDecisionsAndRefinements) {
  Setup({test::Square(10, 10, 30, 30)},
        {test::Square(50, 50, 60, 60),    // MBR-disjoint
         test::Square(15, 15, 25, 25),    // deep containment
         test::Square(12, 12, 40, 28)});  // overlap
  Pipeline pc(Method::kPC, RView(), SView());
  for (uint32_t j = 0; j < 3; ++j) pc.FindRelation(0, j);
  const PipelineStats& stats = pc.Stats();
  EXPECT_EQ(stats.pairs, 3u);
  EXPECT_EQ(stats.decided_by_mbr + stats.decided_by_filter + stats.refined,
            3u);
  EXPECT_GE(stats.decided_by_mbr, 1u);  // the disjoint pair

  // ST2 refines everything that passes the MBR filter.
  Pipeline st2(Method::kST2, RView(), SView());
  for (uint32_t j = 0; j < 3; ++j) st2.FindRelation(0, j);
  EXPECT_EQ(st2.Stats().refined, 2u);
  EXPECT_EQ(st2.Stats().decided_by_mbr, 1u);

  // P+C never refines more than ST2.
  EXPECT_LE(stats.refined, st2.Stats().refined);
}

TEST_F(PipelineTest, ResetStatsClearsCounters) {
  Setup({test::Square(0, 0, 1, 1)}, {test::Square(0, 0, 1, 1)});
  Pipeline pc(Method::kPC, RView(), SView());
  pc.FindRelation(0, 0);
  EXPECT_EQ(pc.Stats().pairs, 1u);
  pc.ResetStats();
  EXPECT_EQ(pc.Stats().pairs, 0u);
  EXPECT_EQ(pc.Stats().refined, 0u);
}

TEST_F(PipelineTest, RelateAgreesWithFindRelationSemantics) {
  Setup({test::Square(10, 10, 30, 30), test::Square(15, 15, 25, 25)},
        {test::Square(10, 10, 30, 30), test::Square(15, 15, 25, 25),
         test::Square(28, 28, 50, 50), test::Square(70, 70, 80, 80)});
  Pipeline pc(Method::kPC, RView(), SView());
  Pipeline st2(Method::kST2, RView(), SView());
  for (uint32_t i = 0; i < 2; ++i) {
    for (uint32_t j = 0; j < 4; ++j) {
      const de9im::Matrix matrix = de9im::RelateMatrix(
          r_objects_[i].geometry, s_objects_[j].geometry);
      for (int p = 0; p < de9im::kNumRelations; ++p) {
        const Relation predicate = static_cast<Relation>(p);
        const bool expected = RelationHolds(predicate, matrix);
        EXPECT_EQ(pc.Relate(i, j, predicate), expected)
            << "P+C " << i << "," << j << " " << ToString(predicate);
        EXPECT_EQ(st2.Relate(i, j, predicate), expected)
            << "ST2 " << i << "," << j << " " << ToString(predicate);
      }
    }
  }
}

TEST_F(PipelineTest, StageTimingAccumulatesWhenEnabled) {
  Setup({test::Square(10, 10, 30, 30)}, {test::Square(12, 12, 40, 28)});
  Pipeline timed(Method::kPC, RView(), SView(), /*time_stages=*/true);
  timed.FindRelation(0, 0);
  EXPECT_GT(timed.Stats().filter_seconds + timed.Stats().refine_seconds, 0.0);

  Pipeline untimed(Method::kPC, RView(), SView(), /*time_stages=*/false);
  untimed.FindRelation(0, 0);
  EXPECT_EQ(untimed.Stats().filter_seconds, 0.0);
  EXPECT_EQ(untimed.Stats().refine_seconds, 0.0);
}

TEST_F(PipelineTest, MethodNames) {
  EXPECT_STREQ(ToString(Method::kST2), "ST2");
  EXPECT_STREQ(ToString(Method::kOP2), "OP2");
  EXPECT_STREQ(ToString(Method::kApril), "APRIL");
  EXPECT_STREQ(ToString(Method::kPC), "P+C");
}

}  // namespace
}  // namespace stj
