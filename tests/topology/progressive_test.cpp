#include "src/topology/progressive.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/datasets/scenarios.h"

namespace stj {
namespace {

class ProgressiveTest : public ::testing::Test {
 protected:
  ProgressiveTest() {
    ScenarioOptions options;
    options.scale = 0.08;
    options.grid_order = 10;
    scenario_ = BuildScenario("OLE-OPE", options);
  }
  ScenarioData scenario_;
};

TEST_F(ProgressiveTest, ScheduleIsAPermutation) {
  for (const SchedulingPolicy policy :
       {SchedulingPolicy::kInputOrder, SchedulingPolicy::kMbrOverlapRatio,
        SchedulingPolicy::kAprilOverlap}) {
    const std::vector<size_t> order = ScheduleCandidates(
        policy, scenario_.RView(), scenario_.SView(), scenario_.candidates);
    ASSERT_EQ(order.size(), scenario_.candidates.size()) << ToString(policy);
    std::vector<size_t> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < sorted.size(); ++i) {
      ASSERT_EQ(sorted[i], i) << ToString(policy);
    }
  }
}

TEST_F(ProgressiveTest, InputOrderIsIdentity) {
  const std::vector<size_t> order =
      ScheduleCandidates(SchedulingPolicy::kInputOrder, scenario_.RView(),
                         scenario_.SView(), scenario_.candidates);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST_F(ProgressiveTest, TotalLinksIndependentOfPolicy) {
  size_t reference_links = 0;
  bool first = true;
  for (const SchedulingPolicy policy :
       {SchedulingPolicy::kInputOrder, SchedulingPolicy::kMbrOverlapRatio,
        SchedulingPolicy::kAprilOverlap}) {
    const auto curve = ProgressiveFindRelation(
        Method::kPC, scenario_.RView(), scenario_.SView(),
        scenario_.candidates, policy);
    ASSERT_FALSE(curve.empty());
    EXPECT_EQ(curve.back().processed, scenario_.candidates.size());
    if (first) {
      reference_links = curve.back().links_found;
      first = false;
    } else {
      EXPECT_EQ(curve.back().links_found, reference_links) << ToString(policy);
    }
    // The curve is monotone.
    for (size_t i = 1; i < curve.size(); ++i) {
      EXPECT_GE(curve[i].links_found, curve[i - 1].links_found);
      EXPECT_GT(curve[i].processed, curve[i - 1].processed);
    }
  }
}

TEST_F(ProgressiveTest, AprilSchedulingFrontLoadsLinks) {
  // At the halfway checkpoint, the APRIL-overlap schedule must have found at
  // least as many links as the unscheduled baseline (up to small noise —
  // require at least 95%).
  const auto baseline = ProgressiveFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      SchedulingPolicy::kInputOrder);
  const auto scheduled = ProgressiveFindRelation(
      Method::kPC, scenario_.RView(), scenario_.SView(), scenario_.candidates,
      SchedulingPolicy::kAprilOverlap);
  ASSERT_GE(baseline.size(), 5u);
  ASSERT_GE(scheduled.size(), 5u);
  const size_t half = baseline.size() / 2;
  EXPECT_GE(10 * scheduled[half].links_found,
            9 * baseline[half].links_found);
}

}  // namespace
}  // namespace stj
