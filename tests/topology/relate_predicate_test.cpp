// Soundness of relate_p (Sec. 3.3 / Fig. 6): a definite yes/no must agree
// with the DE-9IM mask test; inconclusive is always allowed.

#include "src/topology/relate_predicate.h"

#include <gtest/gtest.h>

#include "src/de9im/relate_engine.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace stj {
namespace {

using de9im::Relation;

class RelatePredicateTest : public ::testing::Test {
 protected:
  RelatePredicateTest()
      : grid_(Box::Of(Point{0, 0}, Point{100, 100}), 9), builder_(&grid_) {}

  void CheckAllPredicates(const Polygon& r, const Polygon& s) {
    const AprilApproximation ra = builder_.Build(r);
    const AprilApproximation sa = builder_.Build(s);
    const de9im::Matrix matrix = de9im::RelateMatrix(r, s);
    for (int p = 0; p < de9im::kNumRelations; ++p) {
      const Relation predicate = static_cast<Relation>(p);
      const RelateAnswer answer = RelatePredicateFilter(
          predicate, r.Bounds(), ra, s.Bounds(), sa);
      const bool exact = RelationHolds(predicate, matrix);
      if (answer == RelateAnswer::kYes) {
        EXPECT_TRUE(exact) << "false positive for " << ToString(predicate);
      } else if (answer == RelateAnswer::kNo) {
        EXPECT_FALSE(exact) << "false negative for " << ToString(predicate);
      }
    }
  }

  RasterGrid grid_;
  AprilBuilder builder_;
};

TEST_F(RelatePredicateTest, DeepContainmentAnswersInsideYes) {
  const Polygon inner = test::Square(45, 45, 55, 55);
  const Polygon outer = test::Square(10, 10, 90, 90);
  const AprilApproximation ia = builder_.Build(inner);
  const AprilApproximation oa = builder_.Build(outer);
  EXPECT_EQ(RelatePredicateFilter(Relation::kInside, inner.Bounds(), ia,
                                  outer.Bounds(), oa),
            RelateAnswer::kYes);
  EXPECT_EQ(RelatePredicateFilter(Relation::kCoveredBy, inner.Bounds(), ia,
                                  outer.Bounds(), oa),
            RelateAnswer::kYes);
  EXPECT_EQ(RelatePredicateFilter(Relation::kContains, outer.Bounds(), oa,
                                  inner.Bounds(), ia),
            RelateAnswer::kYes);
  EXPECT_EQ(RelatePredicateFilter(Relation::kCovers, outer.Bounds(), oa,
                                  inner.Bounds(), ia),
            RelateAnswer::kYes);
  // And the impossible directions are immediate no's.
  EXPECT_EQ(RelatePredicateFilter(Relation::kInside, outer.Bounds(), oa,
                                  inner.Bounds(), ia),
            RelateAnswer::kNo);
  EXPECT_EQ(RelatePredicateFilter(Relation::kEquals, inner.Bounds(), ia,
                                  outer.Bounds(), oa),
            RelateAnswer::kNo);
}

TEST_F(RelatePredicateTest, MeetsFastNoOnInteriorOverlap) {
  const Polygon a = test::Square(10, 10, 60, 60);
  const Polygon b = test::Square(30, 30, 80, 80);
  EXPECT_EQ(RelatePredicateFilter(Relation::kMeets, a.Bounds(),
                                  builder_.Build(a), b.Bounds(),
                                  builder_.Build(b)),
            RelateAnswer::kNo);
}

TEST_F(RelatePredicateTest, MeetsFastNoOnDisjoint) {
  const Polygon a = test::Square(10, 10, 20, 20);
  const Polygon b = test::Square(70, 70, 90, 90);
  EXPECT_EQ(RelatePredicateFilter(Relation::kMeets, a.Bounds(),
                                  builder_.Build(a), b.Bounds(),
                                  builder_.Build(b)),
            RelateAnswer::kNo);
}

TEST_F(RelatePredicateTest, EqualsRequiresMatchingLists) {
  const Polygon a = test::Square(10, 10, 60, 60);
  const AprilApproximation aa = builder_.Build(a);
  EXPECT_EQ(RelatePredicateFilter(Relation::kEquals, a.Bounds(), aa,
                                  a.Bounds(), aa),
            RelateAnswer::kInconclusive);  // rasters equal: must refine
  const Polygon b = test::Square(10, 10, 60.5, 60);
  EXPECT_EQ(RelatePredicateFilter(Relation::kEquals, a.Bounds(), aa,
                                  b.Bounds(), builder_.Build(b)),
            RelateAnswer::kNo);  // different MBRs: impossible
}

TEST_F(RelatePredicateTest, IntersectsAndDisjointAreNegations) {
  Rng rng(211);
  for (int i = 0; i < 100; ++i) {
    const Polygon a = test::RandomBlob(
        &rng, Point{rng.Uniform(20, 80), rng.Uniform(20, 80)},
        rng.LogUniform(1, 10), 32);
    const Polygon b = test::RandomBlob(
        &rng, Point{rng.Uniform(20, 80), rng.Uniform(20, 80)},
        rng.LogUniform(1, 10), 32);
    const AprilApproximation aa = builder_.Build(a);
    const AprilApproximation ba = builder_.Build(b);
    const RelateAnswer yes = RelatePredicateFilter(
        Relation::kIntersects, a.Bounds(), aa, b.Bounds(), ba);
    const RelateAnswer no = RelatePredicateFilter(
        Relation::kDisjoint, a.Bounds(), aa, b.Bounds(), ba);
    if (yes == RelateAnswer::kYes) {
      EXPECT_EQ(no, RelateAnswer::kNo);
    }
    if (yes == RelateAnswer::kNo) {
      EXPECT_EQ(no, RelateAnswer::kYes);
    }
    if (yes == RelateAnswer::kInconclusive) {
      EXPECT_EQ(no, RelateAnswer::kInconclusive);
    }
  }
}

TEST_F(RelatePredicateTest, PropertySweepAllPredicates) {
  Rng rng(213);
  for (int i = 0; i < 250; ++i) {
    const Point c{rng.Uniform(20, 80), rng.Uniform(20, 80)};
    const Polygon a = test::RandomBlob(
        &rng, c, rng.LogUniform(1.0, 12.0),
        static_cast<size_t>(rng.UniformInt(6, 100)), 0.25);
    Polygon b;
    const double mix = rng.NextDouble();
    if (mix < 0.3) {
      b = test::RandomBlob(&rng,
                           Point{c.x + rng.Uniform(-8, 8),
                                 c.y + rng.Uniform(-8, 8)},
                           rng.LogUniform(1.0, 12.0),
                           static_cast<size_t>(rng.UniformInt(6, 100)), 0.25);
    } else if (mix < 0.5) {
      b = ScaleAbout(a, c, rng.Uniform(0.4, 0.9));
    } else if (mix < 0.65) {
      b = ScaleAbout(a, c, rng.Uniform(1.1, 1.6));
    } else if (mix < 0.75) {
      b = a;
    } else if (mix < 0.85 && !a.Holes().empty()) {
      b = Polygon(a.Holes()[0]);
    } else {
      b = test::RandomBlob(&rng, Point{rng.Uniform(0, 100), rng.Uniform(0, 100)},
                           rng.LogUniform(0.5, 5.0), 24);
    }
    CheckAllPredicates(a, b);
    CheckAllPredicates(b, a);
  }
}

}  // namespace
}  // namespace stj
