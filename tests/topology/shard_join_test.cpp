#include "src/topology/shard_scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "src/datasets/scenarios.h"
#include "src/util/exec_context.h"

namespace stj {
namespace {

CompressedAprilStore Compress(const std::vector<AprilApproximation>& april) {
  CompressedAprilStore cstore;
  for (const AprilApproximation& a : april) {
    if (!a.usable) {
      cstore.AppendCorruptPlaceholder();
      continue;
    }
    const AprilView view(a);
    cstore.AppendEncoded(view.conservative, view.progressive);
  }
  return cstore;
}

// The differential oracle: the single-arena compressed join over the
// scenario's own candidate list, re-sorted by (r, s) to match the sharded
// result's canonical order.
struct Reference {
  std::vector<CandidatePair> pairs;
  std::vector<de9im::Relation> relations;

  // Relation of one pair; asserts the pair exists in the reference.
  de9im::Relation Of(const CandidatePair& p) const {
    const auto it = std::lower_bound(pairs.begin(), pairs.end(), p);
    EXPECT_TRUE(it != pairs.end() && *it == p)
        << "pair (" << p.r_idx << ", " << p.s_idx << ") not in reference";
    return relations[static_cast<size_t>(it - pairs.begin())];
  }
};

class ShardJoinTest : public ::testing::Test {
 protected:
  ShardJoinTest() {
    ScenarioOptions options;
    options.scale = 0.05;
    options.grid_order = 10;
    scenario_ = BuildScenario("OLE-OPE", options);
    r_cstore_ = Compress(scenario_.r_april);
    s_cstore_ = Compress(scenario_.s_april);

    DatasetView rv;
    rv.objects = &scenario_.r.objects;
    rv.cstore = &r_cstore_;
    DatasetView sv;
    sv.objects = &scenario_.s.objects;
    sv.cstore = &s_cstore_;
    JoinOptions options2;
    options2.num_threads = 2;
    const ParallelJoinResult ref = ParallelFindRelation(
        Method::kPC, rv, sv, scenario_.candidates, options2);
    EXPECT_TRUE(ref.status.ok());

    std::vector<size_t> order(scenario_.candidates.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return scenario_.candidates[a] < scenario_.candidates[b];
    });
    reference_.pairs.reserve(order.size());
    reference_.relations.reserve(order.size());
    for (const size_t i : order) {
      reference_.pairs.push_back(scenario_.candidates[i]);
      reference_.relations.push_back(ref.relations[i]);
    }
  }

  // Writes both shard sets under a test-unique directory and opens them.
  void BuildSets(const std::string& name, uint32_t r_tiles, uint32_t s_tiles,
                 ShardSet* r_set, ShardSet* s_set) {
    const std::string dir =
        std::string(::testing::TempDir()) + "/shard_join_" + name;
    PartitionOptions poptions;
    poptions.target_tiles = r_tiles;
    ASSERT_TRUE(BuildShardSet(dir + "/r", scenario_.r.objects, r_cstore_,
                              poptions)
                    .ok());
    poptions.target_tiles = s_tiles;
    ASSERT_TRUE(BuildShardSet(dir + "/s", scenario_.s.objects, s_cstore_,
                              poptions)
                    .ok());
    ASSERT_TRUE(ShardSet::Open(dir + "/r", r_set).ok());
    ASSERT_TRUE(ShardSet::Open(dir + "/s", s_set).ok());
  }

  void ExpectMatchesReference(const ShardJoinResult& result) {
    ASSERT_TRUE(result.status.ok()) << result.status.message();
    ASSERT_EQ(result.pairs.size(), reference_.pairs.size());
    ASSERT_EQ(result.relations.size(), reference_.relations.size());
    for (size_t i = 0; i < result.pairs.size(); ++i) {
      ASSERT_TRUE(result.pairs[i] == reference_.pairs[i])
          << "pair " << i << ": (" << result.pairs[i].r_idx << ", "
          << result.pairs[i].s_idx << ") vs (" << reference_.pairs[i].r_idx
          << ", " << reference_.pairs[i].s_idx << ")";
      ASSERT_EQ(result.relations[i], reference_.relations[i]) << "pair " << i;
    }
  }

  ScenarioData scenario_;
  CompressedAprilStore r_cstore_;
  CompressedAprilStore s_cstore_;
  Reference reference_;
};

TEST_F(ShardJoinTest, SingleTileMatchesSingleArenaJoin) {
  ShardSet r_set, s_set;
  BuildSets("single", 1, 1, &r_set, &s_set);
  ShardJoinOptions options;
  options.join.num_threads = 1;
  const ShardJoinResult result =
      ShardedFindRelation(Method::kPC, r_set, s_set, options);
  ExpectMatchesReference(result);
  EXPECT_EQ(result.shard_stats.tasks, 1u);
  EXPECT_EQ(result.shard_stats.pairs_deduped, 0u);
}

TEST_F(ShardJoinTest, DifferentialSweepOverGridsCachesThreadsAndBatches) {
  // The tentpole acceptance sweep: the sharded join must be byte-identical
  // to the single-arena reference at every (tile grid, cache budget,
  // threads, batch size) combination — cache budgets far below the working
  // set included (they only force reloads).
  struct TileConfig {
    const char* name;
    uint32_t r_tiles, s_tiles;
  };
  struct RunConfig {
    size_t cache_bytes;
    unsigned threads;
    size_t batch;
  };
  const TileConfig tile_configs[] = {
      {"sweep_a", 4, 6}, {"sweep_b", 9, 4}, {"sweep_c", 2, 12}};
  const RunConfig run_configs[] = {
      {size_t{32} << 10, 1, 1},   // thrash the cache, oracle executor
      {size_t{256} << 20, 3, 1},  // all resident, parallel
      {size_t{1} << 20, 2, 8},    // tight cache, batched executor
  };
  for (const TileConfig& tc : tile_configs) {
    ShardSet r_set, s_set;
    BuildSets(tc.name, tc.r_tiles, tc.s_tiles, &r_set, &s_set);
    for (const RunConfig& rc : run_configs) {
      ShardJoinOptions options;
      options.shard_cache_bytes = rc.cache_bytes;
      options.join.num_threads = rc.threads;
      options.join.batch_size = rc.batch;
      const ShardJoinResult result =
          ShardedFindRelation(Method::kPC, r_set, s_set, options);
      SCOPED_TRACE(std::string(tc.name) + " cache=" +
                   std::to_string(rc.cache_bytes) +
                   " threads=" + std::to_string(rc.threads) +
                   " batch=" + std::to_string(rc.batch));
      ExpectMatchesReference(result);
      EXPECT_EQ(result.shard_stats.tasks_run, result.shard_stats.tasks);
      EXPECT_EQ(result.shard_stats.pairs_emitted, reference_.pairs.size());
      // Every task fetches exactly two shards from the cache.
      EXPECT_EQ(result.shard_stats.shard_loads + result.shard_stats.shard_hits,
                2 * result.shard_stats.tasks_run);
    }
  }
}

TEST_F(ShardJoinTest, BoundaryPairsAreDedupedNotDropped) {
  ShardSet r_set, s_set;
  BuildSets("dedup", 6, 6, &r_set, &s_set);
  ShardJoinOptions options;
  options.join.num_threads = 1;
  const ShardJoinResult result =
      ShardedFindRelation(Method::kPC, r_set, s_set, options);
  ExpectMatchesReference(result);
  // With replicated boundary objects on both sides some candidate pairs
  // must surface in several tasks; the reference-point rule drops the
  // duplicates (exactly — the result above already proved no pair was lost
  // or double-reported).
  EXPECT_GT(result.shard_stats.pairs_deduped, 0u);
}

TEST_F(ShardJoinTest, TinyCacheEvictsAndStaysExact) {
  ShardSet r_set, s_set;
  BuildSets("evict", 8, 8, &r_set, &s_set);
  ShardJoinOptions options;
  options.shard_cache_bytes = 1;  // floor: only the pinned pair stays
  options.join.num_threads = 2;
  const ShardJoinResult result =
      ShardedFindRelation(Method::kPC, r_set, s_set, options);
  ExpectMatchesReference(result);
  EXPECT_GT(result.shard_stats.shards_evicted, 0u);
  EXPECT_GT(result.shard_stats.cache_peak_bytes, 0u);
}

TEST_F(ShardJoinTest, DeterministicAcrossRepeatedRuns) {
  ShardSet r_set, s_set;
  BuildSets("repeat", 5, 5, &r_set, &s_set);
  ShardJoinOptions options;
  options.shard_cache_bytes = size_t{2} << 20;
  options.join.num_threads = 3;
  const ShardJoinResult a =
      ShardedFindRelation(Method::kPC, r_set, s_set, options);
  const ShardJoinResult b =
      ShardedFindRelation(Method::kPC, r_set, s_set, options);
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  EXPECT_EQ(a.pairs.size(), b.pairs.size());
  EXPECT_TRUE(a.pairs == b.pairs);
  EXPECT_TRUE(a.relations == b.relations);
}

TEST_F(ShardJoinTest, CancellationYieldsValidAnsweredSubset) {
  ShardSet r_set, s_set;
  BuildSets("cancel", 4, 4, &r_set, &s_set);

  ExecContext exec;
  exec.SetCheckInHook([](ExecContext& ctx, uint64_t ordinal) {
    if (ordinal == 60) ctx.Cancel();
  });
  ShardJoinOptions options;
  options.join.num_threads = 1;
  options.join.exec = &exec;
  const ShardJoinResult result =
      ShardedFindRelation(Method::kPC, r_set, s_set, options);
  ASSERT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
  // Loss-less partial contract across the scheduler: fewer pairs than the
  // full run, every reported one final and identical to the reference.
  EXPECT_LT(result.pairs.size(), reference_.pairs.size());
  ASSERT_EQ(result.pairs.size(), result.relations.size());
  for (size_t i = 0; i < result.pairs.size(); ++i) {
    if (i > 0) {
      EXPECT_TRUE(result.pairs[i - 1] < result.pairs[i])
          << "partial result not strictly sorted at " << i;
    }
    EXPECT_EQ(result.relations[i], reference_.Of(result.pairs[i]));
  }
}

TEST_F(ShardJoinTest, MemoryBudgetTripSurfacesResourceExhausted) {
  ShardSet r_set, s_set;
  BuildSets("budget", 4, 4, &r_set, &s_set);

  ExecContext exec;
  exec.SetMemoryBudget(size_t{64} << 10);  // far below one shard pair
  ShardJoinOptions options;
  options.join.num_threads = 1;
  options.join.exec = &exec;
  const ShardJoinResult result =
      ShardedFindRelation(Method::kPC, r_set, s_set, options);
  ASSERT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kResourceExhausted);
  // Whatever was answered before the trip must still be exact.
  for (size_t i = 0; i < result.pairs.size(); ++i) {
    EXPECT_EQ(result.relations[i], reference_.Of(result.pairs[i]));
  }
}

TEST_F(ShardJoinTest, BuildShardSetReportsPartitionAndStats) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/shard_join_build";
  PartitionOptions poptions;
  poptions.target_tiles = 4;
  TilePartition partition;
  ShardWriteStats stats;
  ASSERT_TRUE(BuildShardSet(dir, scenario_.r.objects, r_cstore_, poptions,
                            &partition, &stats)
                  .ok());
  EXPECT_EQ(stats.tiles, partition.Tiles());
  EXPECT_GT(stats.bytes_written, 0u);
  ShardSet set;
  ASSERT_TRUE(ShardSet::Open(dir, &set).ok());
  EXPECT_TRUE(set.Grid() == partition.grid);
  EXPECT_EQ(set.TotalObjects(), scenario_.r.objects.size());
  EXPECT_GT(set.TotalShardBytes(), 0u);
}

}  // namespace
}  // namespace stj
