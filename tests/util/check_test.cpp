#include "src/util/check.h"

#include <gtest/gtest.h>

#include <vector>

namespace stj {
namespace {

TEST(Check, PassingChecksAreSilent) {
  STJ_CHECK(1 + 1 == 2);
  STJ_CHECK_MSG(true, "never printed");
  STJ_DCHECK(true);
  STJ_DCHECK_EQ(2, 2);
  STJ_DCHECK_NE(1, 2);
  STJ_DCHECK_LE(1, 1);
  STJ_DCHECK_LT(1, 2);
  STJ_DCHECK_GE(2, 1);
  const std::vector<int> sorted = {1, 2, 2, 3};
  STJ_DCHECK_SORTED(sorted.begin(), sorted.end(),
                    [](int a, int b) { return a < b; });
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(STJ_CHECK(1 + 1 == 3), "check failed: 1 \\+ 1 == 3");
  EXPECT_DEATH(STJ_CHECK_MSG(false, "broken widget"), "broken widget");
}

TEST(Check, DisabledDchecksDoNotEvaluate) {
#if !STJ_INVARIANTS_ENABLED
  // In non-invariants builds DCHECK arguments must never run: the sizeof
  // no-op keeps names odr-used without evaluation.
  int calls = 0;
  auto side_effect = [&calls]() {
    ++calls;
    return true;
  };
  STJ_DCHECK(side_effect());
  EXPECT_EQ(calls, 0);
#else
  // In invariants builds a failing DCHECK aborts like a CHECK.
  EXPECT_DEATH(STJ_DCHECK(false), "check failed");
  const std::vector<int> unsorted = {3, 1, 2};
  EXPECT_DEATH(STJ_DCHECK_SORTED(unsorted.begin(), unsorted.end(),
                                 [](int a, int b) { return a < b; }),
               "not sorted");
#endif
}

TEST(Check, InvariantsFlagMatchesCompileMode) {
#if defined(STJ_ENABLE_INVARIANTS)
  EXPECT_EQ(STJ_INVARIANTS_ENABLED, 1);
#else
  EXPECT_EQ(STJ_INVARIANTS_ENABLED, 0);
#endif
}

}  // namespace
}  // namespace stj
