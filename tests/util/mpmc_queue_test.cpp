// Edge-case unit tests for BoundedMpmcQueue (src/util/mpmc_queue.h) with
// real threads — the complement of the exhaustive small-state model suite
// in tests/model/queue_model_test.cpp: the model proves the protocol over
// every interleaving of tiny programs; these tests drive the actual condvar
// wakeups, larger item counts, and the executor's help-drain discipline.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/mpmc_queue.h"

namespace stj {
namespace {

using Queue = BoundedMpmcQueue<int>;
using Outcome = Queue::PopOutcome;

TEST(MpmcQueueTest, TryPushRefusesWhenFullAndAfterClose) {
  Queue q(1);
  int item = 1;
  EXPECT_TRUE(q.TryPush(item));
  int second = 2;
  EXPECT_FALSE(q.TryPush(second)) << "capacity is a hard bound";
  EXPECT_EQ(second, 2) << "a refused push must leave the item intact";

  q.Close();
  // Closed refuses new items but the queued remainder stays drainable: the
  // producer that failed its push helps drain instead of blocking.
  EXPECT_FALSE(q.TryPush(second));
  int drained = 0;
  EXPECT_TRUE(q.TryPop(&drained));
  EXPECT_EQ(drained, 1);
  // Even empty-and-closed, producers stay refused: closed is sticky.
  EXPECT_FALSE(q.TryPush(second));
  int v = 0;
  EXPECT_EQ(q.Pop(&v), Outcome::kClosed);
}

TEST(MpmcQueueTest, AbortDropsItemsAndFailsEverything) {
  Queue q(4);
  for (int i = 0; i < 3; ++i) {
    int item = i;
    ASSERT_TRUE(q.TryPush(item));
  }
  q.Abort();
  EXPECT_TRUE(q.aborted());
  EXPECT_EQ(q.size(), 0u) << "Abort drops the queued remainder";
  int v = 0;
  EXPECT_FALSE(q.TryPop(&v));
  EXPECT_EQ(q.Pop(&v), Outcome::kAborted);
  int item = 9;
  EXPECT_FALSE(q.TryPush(item));
}

TEST(MpmcQueueTest, AbortWakesBlockedConsumers) {
  Queue q(2);
  constexpr int kConsumers = 4;
  std::atomic<int> aborted_wakes{0};
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int i = 0; i < kConsumers; ++i) {
    consumers.emplace_back([&q, &aborted_wakes] {
      int v = 0;
      if (q.Pop(&v) == Outcome::kAborted) {
        aborted_wakes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // No items ever arrive: all four consumers block in Pop until the abort.
  q.Abort();
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(aborted_wakes.load(), kConsumers)
      << "a blocked consumer missed the abort wakeup";
}

TEST(MpmcQueueTest, AbortRacingCloseNeverStrandsAWaiter) {
  // Close and Abort fired concurrently while consumers block: every
  // consumer must return (joining proves the wakeup), with a terminal
  // outcome from either transition. Repeated to give the race room.
  for (int round = 0; round < 50; ++round) {
    Queue q(2);
    std::atomic<int> terminal{0};
    std::vector<std::thread> consumers;
    for (int i = 0; i < 3; ++i) {
      consumers.emplace_back([&q, &terminal] {
        int v = 0;
        const Outcome o = q.Pop(&v);
        if (o == Outcome::kClosed || o == Outcome::kAborted) {
          terminal.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    std::thread closer([&q] { q.Close(); });
    std::thread aborter([&q] { q.Abort(); });
    closer.join();
    aborter.join();
    for (std::thread& t : consumers) t.join();
    ASSERT_EQ(terminal.load(), 3);
    ASSERT_TRUE(q.aborted());
    ASSERT_TRUE(q.closed());
  }
}

TEST(MpmcQueueTest, HelpDrainConservesItemsUnderContention) {
  // Producers use the executor's discipline (failed push -> pop one and
  // process it -> retry); consumers drain until closed. Every accepted item
  // is processed exactly once, whichever side ends up doing the work.
  constexpr int kProducers = 3;
  constexpr int kItemsEach = 200;
  Queue q(2);  // Tiny capacity: the help path runs constantly.
  std::mutex processed_mu;
  std::vector<int> processed;
  std::atomic<int> live_producers{kProducers};

  auto process = [&processed_mu, &processed](int v) {
    const std::lock_guard<std::mutex> lock(processed_mu);
    processed.push_back(v);
  };

  std::vector<std::thread> workers;
  for (int p = 0; p < kProducers; ++p) {
    workers.emplace_back([&, p] {
      for (int i = 0; i < kItemsEach; ++i) {
        int item = p * kItemsEach + i;
        while (!q.TryPush(item)) {
          int helped = 0;
          if (q.TryPop(&helped)) process(helped);
        }
      }
      if (live_producers.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        q.Close();  // Last producer closes the stream.
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    workers.emplace_back([&] {
      int v = 0;
      while (q.Pop(&v) == Outcome::kItem) process(v);
    });
  }
  for (std::thread& t : workers) t.join();

  std::sort(processed.begin(), processed.end());
  std::vector<int> expected(kProducers * kItemsEach);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(processed, expected)
      << "an item was lost or duplicated across the help-drain paths";

  const QueueTelemetry t = q.Telemetry();
  EXPECT_EQ(t.pushed, static_cast<uint64_t>(kProducers * kItemsEach));
  EXPECT_EQ(t.popped, t.pushed);
  EXPECT_LE(t.max_depth, q.capacity());
}

TEST(MpmcQueueTest, TelemetryCountsAndHighWater) {
  Queue q(3);
  for (int i = 0; i < 3; ++i) {
    int item = i;
    ASSERT_TRUE(q.TryPush(item));
  }
  int v = 0;
  ASSERT_TRUE(q.TryPop(&v));
  int item = 3;
  ASSERT_TRUE(q.TryPush(item));
  const QueueTelemetry t = q.Telemetry();
  EXPECT_EQ(t.pushed, 4u);
  EXPECT_EQ(t.popped, 1u);
  EXPECT_EQ(t.max_depth, 3u);
}

}  // namespace
}  // namespace stj
