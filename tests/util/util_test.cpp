#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/status.h"
#include "src/util/timer.h"

namespace stj {
namespace {

TEST(Status, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(Status, FactoriesSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("gone").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::DataLoss("eaten").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::IoError("disk").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::FailedPrecondition("early").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("oops").code(), StatusCode::kInternal);
  EXPECT_FALSE(Status::DataLoss("eaten").ok());
  EXPECT_EQ(Status::DataLoss("eaten").message(), "eaten");
}

TEST(Status, ContextChainsIntoToString) {
  const Status status = Status::DataLoss("checksum mismatch")
                            .WithFile("things.april")
                            .WithLine(12)
                            .WithOffset(345);
  EXPECT_EQ(status.file(), "things.april");
  ASSERT_TRUE(status.has_line());
  EXPECT_EQ(status.line(), 12u);
  ASSERT_TRUE(status.has_offset());
  EXPECT_EQ(status.offset(), 345u);
  const std::string rendered = status.ToString();
  EXPECT_NE(rendered.find("DATA_LOSS"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("things.april:12"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("@byte 345"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("checksum mismatch"), std::string::npos) << rendered;
}

TEST(Status, ContextWithoutLineOmitsIt) {
  const Status status = Status::IoError("unreadable").WithFile("data.wkt");
  EXPECT_FALSE(status.has_line());
  EXPECT_FALSE(status.has_offset());
  EXPECT_NE(status.ToString().find("data.wkt"), std::string::npos);
  EXPECT_EQ(status.ToString().find(":0"), std::string::npos);
}

TEST(Result, HoldsValue) {
  const Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.has_value());
  EXPECT_TRUE(static_cast<bool>(result));
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value(), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(Result, HoldsError) {
  const Result<std::string> result = Status::InvalidArgument("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.has_value());
  EXPECT_FALSE(static_cast<bool>(result));
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.status().message(), "nope");
}

TEST(Result, ArrowOperatorReachesMembers) {
  const Result<std::string> result = std::string("hello");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 5u);
}

TEST(Result, OkStatusIsNotAValidError) {
  // Constructing a Result from an ok Status is a caller bug; it must still
  // yield a valueless, non-ok Result rather than lie about having a value.
  const Result<int> result = Status();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(Rng, DeterministicUnderSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
  Rng c(124);
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 10; ++i) differs |= (a2.NextU64() != c.NextU64());
  EXPECT_TRUE(differs);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    const uint64_t v = rng.NextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, UniformAndLogUniformRanges) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
    const double lu = rng.LogUniform(1.0, 1000.0);
    EXPECT_GE(lu, 1.0);
    EXPECT_LE(lu, 1000.0);
    const int64_t n = rng.UniformInt(-3, 3);
    EXPECT_GE(n, -3);
    EXPECT_LE(n, 3);
  }
}

TEST(Rng, NormalHasReasonableMoments) {
  Rng rng(7);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RunningStats, TracksMinMaxMean) {
  RunningStats stats;
  EXPECT_EQ(stats.Count(), 0u);
  EXPECT_EQ(stats.Mean(), 0.0);
  for (const double v : {3.0, 1.0, 2.0}) stats.Add(v);
  EXPECT_EQ(stats.Count(), 3u);
  EXPECT_EQ(stats.Min(), 1.0);
  EXPECT_EQ(stats.Max(), 3.0);
  EXPECT_DOUBLE_EQ(stats.Mean(), 2.0);
}

TEST(EquiCountBuckets, SplitsEvenlyAndKeepsTiesTogether) {
  std::vector<uint64_t> values;
  for (uint64_t i = 0; i < 100; ++i) values.push_back(i);
  const auto buckets = EquiCountBuckets(values, 4);
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], (std::pair<uint64_t, uint64_t>{0, 24}));
  EXPECT_EQ(buckets[3].second, 99u);

  // Heavy ties: all-equal values collapse into one bucket.
  const auto tied = EquiCountBuckets(std::vector<uint64_t>(50, 7), 5);
  ASSERT_EQ(tied.size(), 1u);
  EXPECT_EQ(tied[0], (std::pair<uint64_t, uint64_t>{7, 7}));
}

TEST(EquiCountBuckets, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(EquiCountBuckets({}, 5).empty());
  EXPECT_TRUE(EquiCountBuckets({1, 2, 3}, 0).empty());
  const auto one = EquiCountBuckets({5}, 3);
  ASSERT_EQ(one.size(), 1u);
}

TEST(Format, WithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
}

TEST(Format, ApproxCount) {
  EXPECT_EQ(FormatApproxCount(999), "999");
  EXPECT_EQ(FormatApproxCount(63300), "63.3K");
  EXPECT_EQ(FormatApproxCount(5180000), "5.18M");
  EXPECT_EQ(FormatApproxCount(2250000000ull), "2.25B");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GT(timer.ElapsedNanos(), 0u);
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

TEST(StageTimer, AccumulatesAcrossSlices) {
  StageTimer timer;
  EXPECT_EQ(timer.TotalSeconds(), 0.0);
  timer.Start();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  timer.Stop();
  const double first = timer.TotalSeconds();
  EXPECT_GT(first, 0.0);
  timer.Start();
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  timer.Stop();
  EXPECT_GT(timer.TotalSeconds(), first);
  timer.Reset();
  EXPECT_EQ(timer.TotalSeconds(), 0.0);
  // Stop without start is a no-op; double start keeps the first slice.
  timer.Stop();
  EXPECT_EQ(timer.TotalSeconds(), 0.0);
}

}  // namespace
}  // namespace stj
