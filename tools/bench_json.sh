#!/usr/bin/env bash
# Produces the checked-in BENCH_*.json files at the repo root: a Release
# build, then three harness runs whose record arrays are validated —
#
#   bench_parallel_scaling  thread sweep of the MBR filter and P+C
#                           find-relation on OLE-OPE (as in BENCH_PR2);
#                           merged with bench_april_build into BENCH_PR3.json
#   bench_april_build       APRIL preprocessing throughput, per-cell oracle
#                           vs run-based Hilbert interval construction, at
#                           grid order 16 on the TW blob dataset
#   bench_prepared_cache    prepared-geometry cache on/off find-relation
#                           refinement on the TC-TZ nested tessellation at
#                           1/2/4 threads, flat and compressed APRIL store
#                           -> BENCH_PR4.json
#   bench_exec_context      ExecContext check-in overhead: P+C find-relation
#                           on OLE-OPE with and without a (never-tripping)
#                           deadline + memory budget armed, 1/4 threads
#                           -> BENCH_PR6.json
#   bench_micro_interval    --json mode: intermediate-filter throughput on
#                           the TC-TZ dense tessellation under forced scalar
#                           vs runtime-dispatched SIMD kernels, flat and
#                           block-compressed APRIL, 1/4 threads
#                           -> BENCH_PR7.json
#   bench_batch_pipeline    staged SoA batch executor vs the pair-at-a-time
#                           driver: end-to-end P+C find-relation on TC-TZ at
#                           grid order 14 from the compressed APRIL store,
#                           batch-size sweep at 1/4 threads
#                           -> BENCH_PR8.json
#   bench_shard_join        out-of-core tile-sharded join vs the single-arena
#                           join on TC-TZ at grid order 14: all-resident
#                           cache and a 25%-of-shard-bytes budget, 1/4
#                           threads, every record verified byte-identical
#                           -> BENCH_PR9.json
#
# Extra arguments are forwarded to the PR3 bench binaries, e.g.:
#
#   tools/bench_json.sh                     # default sweeps, default scale
#   tools/bench_json.sh --threads=1,2,4,8   # fixed thread sweep
#
# (bench_prepared_cache always runs its fixed 1,2,4 thread sweep: the PR4
# acceptance check below needs the 1- and 4-thread records.)
#
# EXPERIMENTS.md explains how to read the numbers (and on what hardware the
# committed files were produced).

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_PR3.json"
PREPARED_OUT_FINAL="BENCH_PR4.json"
EXEC_OUT_FINAL="BENCH_PR6.json"
INTERVAL_OUT_FINAL="BENCH_PR7.json"
BATCH_OUT_FINAL="BENCH_PR8.json"
SHARD_OUT_FINAL="BENCH_PR9.json"
SCALING_OUT="$(mktemp)"
APRIL_OUT="$(mktemp)"
PREPARED_OUT="$(mktemp)"
EXEC_OUT="$(mktemp)"
INTERVAL_OUT="$(mktemp)"
BATCH_OUT="$(mktemp)"
SHARD_OUT="$(mktemp)"
trap 'rm -f "$SCALING_OUT" "$APRIL_OUT" "$PREPARED_OUT" "$EXEC_OUT" "$INTERVAL_OUT" "$BATCH_OUT" "$SHARD_OUT"' EXIT

echo "==== configure + build (Release) ===="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$(nproc)" --target bench_parallel_scaling \
  bench_april_build bench_prepared_cache bench_exec_context \
  bench_micro_interval bench_batch_pipeline bench_shard_join

echo "==== run bench_parallel_scaling ===="
build/bench/bench_parallel_scaling --json="$SCALING_OUT" "$@"

echo "==== run bench_april_build (grid order 16) ===="
# Scale keeps the per-cell oracle affordable at order 16: the oracle
# materialises every covered cell id, which is exactly the cost the
# run-based path exists to avoid.
build/bench/bench_april_build --grid-order=16 --scale=0.1 \
  --json="$APRIL_OUT" "$@"

echo "==== merge + validate $OUT ===="
python3 - "$SCALING_OUT" "$APRIL_OUT" "$OUT" <<'PY'
import json, sys

scaling = json.load(open(sys.argv[1]))
april = json.load(open(sys.argv[2]))
records = scaling + april
assert isinstance(records, list) and records, 'empty report'

scaling_required = {'bench', 'stage', 'scenario', 'threads', 'seconds',
                    'pairs_per_sec', 'preprocess_seconds'}
april_required = {'bench', 'stage', 'mode', 'dataset', 'threads',
                  'grid_order', 'objects', 'intervals', 'seconds',
                  'objects_per_sec', 'intervals_per_sec',
                  'speedup_vs_per_cell'}
for r in records:
    required = (april_required if r.get('bench') == 'april_build'
                else scaling_required)
    missing = required - set(r)
    assert not missing, f'record missing {missing}: {r}'

stages = {r['stage'] for r in scaling}
assert stages == {'mbr_filter', 'find_relation'}, stages
april_stages = {r['stage'] for r in april}
assert april_stages == {'construct', 'build'}, april_stages
modes = {r['mode'] for r in april}
assert modes == {'per_cell', 'run_based'}, modes

# The acceptance number: single-thread run-based interval construction at
# order 16 must beat the per-cell oracle by >= 5x.
construct = [r for r in april
             if r['stage'] == 'construct' and r['mode'] == 'run_based']
assert construct, 'no run_based construct record'
speedup = construct[0]['speedup_vs_per_cell']
assert speedup >= 5.0, f'run-based construction speedup {speedup:.2f}x < 5x'

with open(sys.argv[3], 'w') as f:
    json.dump(records, f, indent=1)
    f.write('\n')
print(f'{len(records)} records OK ({sorted(stages)} + april_build '
      f'{sorted(modes)}, run-based construction speedup {speedup:.1f}x)')
PY

echo "==== run bench_prepared_cache (TC-TZ, threads 1/2/4) ===="
build/bench/bench_prepared_cache --threads=1,2,4 --json="$PREPARED_OUT"

echo "==== validate $PREPARED_OUT_FINAL ===="
python3 - "$PREPARED_OUT" "$PREPARED_OUT_FINAL" <<'PY'
import json, sys

records = json.load(open(sys.argv[1]))
assert isinstance(records, list) and records, 'empty report'

required = {'bench', 'stage', 'scenario', 'method', 'threads', 'store',
            'cache', 'seconds', 'pairs', 'pairs_per_sec', 'refined',
            'refined_per_sec', 'speedup_vs_off', 'prepared_cache_mb',
            'prepared_hits', 'prepared_misses', 'prepared_hit_rate',
            'decoded_hits', 'decoded_misses'}
for r in records:
    missing = required - set(r)
    assert not missing, f'record missing {missing}: {r}'
    assert r['bench'] == 'prepared_cache' and r['stage'] == 'find_relation', r

by_key = {(r['threads'], r['cache'], r['store']): r for r in records}
assert set(by_key) >= {(t, c, s) for t in (1, 2, 4) for c in ('off', 'on')
                       for s in ('flat', 'compressed')}, \
    f'missing (threads, cache, store) combinations: {sorted(by_key)}'

# The acceptance number (unchanged from PR 4, measured on the flat store):
# cache-on refinement throughput (refined pairs/s) must be >= 2x cache-off
# on the TC-TZ tessellation at 1 and 4 threads. The compressed-store legs
# are informational — same refinement stage, filter reads the blocked
# codec — and only need to have run.
speedups = {}
for t in (1, 4):
    off = by_key[(t, 'off', 'flat')]['refined_per_sec']
    on = by_key[(t, 'on', 'flat')]['refined_per_sec']
    assert off > 0, f'zero cache-off throughput at {t} threads'
    speedups[t] = on / off
    assert speedups[t] >= 2.0, \
        f'prepared-cache speedup {speedups[t]:.2f}x < 2x at {t} threads'
    assert by_key[(t, 'on', 'compressed')]['refined_per_sec'] > 0, \
        f'compressed-store leg missing or idle at {t} threads'

with open(sys.argv[2], 'w') as f:
    json.dump(records, f, indent=1)
    f.write('\n')
print(f'{len(records)} records OK (prepared-cache refinement speedup '
      + ', '.join(f'{t}T {s:.1f}x' for t, s in sorted(speedups.items())) + ')')
PY

echo "==== run bench_exec_context (OLE-OPE, threads 1/4) ===="
build/bench/bench_exec_context --threads=1,4 --json="$EXEC_OUT"

echo "==== validate $EXEC_OUT_FINAL ===="
python3 - "$EXEC_OUT" "$EXEC_OUT_FINAL" <<'PY'
import json, sys

records = json.load(open(sys.argv[1]))
assert isinstance(records, list) and records, 'empty report'

required = {'bench', 'stage', 'scenario', 'method', 'threads', 'exec',
            'seconds', 'pairs', 'pairs_per_sec', 'checkins', 'overhead_pct'}
for r in records:
    missing = required - set(r)
    assert not missing, f'record missing {missing}: {r}'
    assert r['bench'] == 'exec_context' and r['stage'] == 'find_relation', r

by_key = {(r['threads'], r['exec']): r for r in records}
assert set(by_key) >= {(t, e) for t in (1, 4) for e in ('off', 'on')}, \
    f'missing (threads, exec) combinations: {sorted(by_key)}'

# The acceptance number: with an armed-but-never-tripping ExecContext the
# join throughput must stay within 2% of the context-free run.
overheads = {}
for t in (1, 4):
    off = by_key[(t, 'off')]['pairs_per_sec']
    on = by_key[(t, 'on')]['pairs_per_sec']
    assert off > 0, f'zero exec-off throughput at {t} threads'
    overheads[t] = 100.0 * (off - on) / off
    assert overheads[t] <= 2.0, \
        f'exec-context overhead {overheads[t]:.2f}% > 2% at {t} threads'
    assert by_key[(t, 'on')]['checkins'] >= by_key[(t, 'on')]['pairs'], \
        'bounded run must check in at least once per pair'

with open(sys.argv[2], 'w') as f:
    json.dump(records, f, indent=1)
    f.write('\n')
print(f'{len(records)} records OK (exec-context overhead '
      + ', '.join(f'{t}T {o:+.2f}%' for t, o in sorted(overheads.items()))
      + ')')
PY

echo "==== run bench_micro_interval --json (TC-TZ, grid order 14, threads 1/4) ===="
# Grid order 14 keeps the tessellation lists long (thousands of intervals per
# TC object), which is the dense-list regime the SIMD kernels target; the
# scale keeps the scenario build affordable.
build/bench/bench_micro_interval --scale=0.05 --grid-order=14 --threads=1,4 \
  --json="$INTERVAL_OUT"

echo "==== validate $INTERVAL_OUT_FINAL ===="
python3 - "$INTERVAL_OUT" "$INTERVAL_OUT_FINAL" <<'PY'
import json, sys

records = json.load(open(sys.argv[1]))
assert isinstance(records, list) and records, 'empty report'

codec_required = {'bench', 'stage', 'scenario', 'grid_order', 'flat_bytes',
                  'blocked_bytes', 'compression_ratio'}
filter_required = {'bench', 'stage', 'scenario', 'mode', 'simd_level',
                   'threads', 'pairs', 'seconds', 'pairs_per_sec',
                   'speedup_vs_scalar', 'identical'}
codec = [r for r in records if r['stage'] == 'codec']
filt = [r for r in records if r['stage'] == 'find_relation_filter']
assert len(codec) == 1, f'expected one codec record, got {len(codec)}'
assert filt, 'no find_relation_filter records'
for r in codec:
    missing = codec_required - set(r)
    assert not missing, f'codec record missing {missing}: {r}'
for r in filt:
    missing = filter_required - set(r)
    assert not missing, f'filter record missing {missing}: {r}'
    assert r['bench'] == 'interval_simd', r
    # Decision vectors must agree bit-for-bit across scalar/SIMD and
    # flat/compressed: the kernels may only change speed, never answers.
    assert r['identical'] == 1, f'divergent decisions: {r}'

ratio = codec[0]['compression_ratio']
assert ratio >= 2.0, f'codec compression ratio {ratio:.2f}x < 2x'

by_key = {(r['mode'], r['threads']): r for r in filt}
assert set(by_key) >= {(m, t) for m in ('scalar', 'simd', 'simd_compressed')
                       for t in (1, 4)}, \
    f'missing (mode, threads) combinations: {sorted(by_key)}'

# The acceptance number: runtime-dispatched SIMD kernels must deliver >=
# 1.5x intermediate-filter throughput over the forced-scalar baseline on
# the dense tessellation at 1 and 4 threads.
speedups = {}
for t in (1, 4):
    s = by_key[('simd', t)]['speedup_vs_scalar']
    speedups[t] = s
    assert s >= 1.5, f'SIMD filter speedup {s:.2f}x < 1.5x at {t} threads'

with open(sys.argv[2], 'w') as f:
    json.dump(records, f, indent=1)
    f.write('\n')
print(f'{len(records)} records OK (SIMD filter speedup '
      + ', '.join(f'{t}T {s:.1f}x' for t, s in sorted(speedups.items()))
      + f', codec ratio {ratio:.1f}x)')
PY

echo "==== run bench_batch_pipeline (TC-TZ, compressed store, grid order 14, threads 1/4) ===="
# Grid order 14 + the compressed store is the regime the staged executor
# targets: long interval lists make the filter (and its per-worker decode
# work) a real fraction of the join, and the whole-input batch legs both
# de-duplicate that decode work and sidestep worker contention. The sweep
# keeps batch_size=1 as the in-run baseline leg at every thread count.
build/bench/bench_batch_pipeline --grid-order=14 --compressed \
  --threads=1,4 --batch-size=1,1024,4096,16384 --json="$BATCH_OUT"

echo "==== validate $BATCH_OUT_FINAL ===="
python3 - "$BATCH_OUT" "$BATCH_OUT_FINAL" <<'PY'
import json, sys

records = json.load(open(sys.argv[1]))
assert isinstance(records, list) and records, 'empty report'

required = {'bench', 'scenario', 'method', 'store', 'threads', 'batch_size',
            'queue_depth', 'seconds', 'pairs', 'pairs_per_sec', 'refined',
            'identical', 'speedup_vs_pair_at_a_time', 'batches',
            'batches_enqueued', 'batches_dequeued', 'queue_max_depth',
            'queue_stall_seconds', 'prepared_hits', 'prepared_misses',
            'decoded_hits', 'decoded_misses'}
for r in records:
    missing = required - set(r)
    assert not missing, f'record missing {missing}: {r}'
    assert r['bench'] == 'batch_pipeline', r
    # Every repetition of every leg is checked against the single-threaded
    # pair-at-a-time reference inside the harness; identical=1 records that.
    assert r['identical'] == 1, f'divergent decisions: {r}'

by_key = {(r['threads'], r['batch_size']): r for r in records}
assert set(by_key) >= {(t, b) for t in (1, 4)
                       for b in (1, 1024, 4096, 16384)}, \
    f'missing (threads, batch_size) combinations: {sorted(by_key)}'

# Queue telemetry sanity: on a completed run every enqueued refinement
# batch was drained.
for r in records:
    assert r['batches_enqueued'] == r['batches_dequeued'], \
        f'unbalanced queue telemetry: {r}'

# The acceptance number: the best batched leg must deliver >= 1.3x
# end-to-end find-relation throughput over the pair-at-a-time leg at the
# same 4 threads (median-of-N, interleaved sampling inside the harness).
best = max(r['speedup_vs_pair_at_a_time'] for r in records
           if r['threads'] == 4 and r['batch_size'] > 1)
assert best >= 1.3, f'batched speedup {best:.2f}x < 1.3x at 4 threads'

# No-regression guard for the pair-at-a-time fallback: the batch_size=1
# leg (identical code path to the pre-batching driver) must sustain a
# sane absolute throughput; a gross slowdown of the fallback would show
# up here even though its in-run speedup is 1.0 by construction.
base = by_key[(1, 1)]['pairs_per_sec']
assert base >= 10000, f'pair-at-a-time fallback at {base:.0f} pairs/s'

with open(sys.argv[2], 'w') as f:
    json.dump(records, f, indent=1)
    f.write('\n')
print(f'{len(records)} records OK (peak batched speedup {best:.2f}x at 4T, '
      f'pair-at-a-time baseline {base:.0f} pairs/s)')
PY

echo "==== run bench_shard_join (TC-TZ, grid order 14, threads 1/4) ===="
# Same regime as the batch-pipeline bench: long interval lists and a dense
# candidate set, so both the per-task joins and the quarter-budget cache
# pressure are real work rather than fixed-cost noise.
build/bench/bench_shard_join --grid-order=14 --threads=1,4 \
  --json="$SHARD_OUT"

echo "==== validate $SHARD_OUT_FINAL ===="
python3 - "$SHARD_OUT" "$SHARD_OUT_FINAL" <<'PY'
import json, sys

records = json.load(open(sys.argv[1]))
assert isinstance(records, list) and records, 'empty report'

arena_required = {'bench', 'scenario', 'method', 'threads', 'leg',
                  'shard_bytes_mb', 'seconds', 'pairs', 'pairs_per_sec',
                  'identical'}
shard_required = arena_required | {'cache_mb', 'tiles_r', 'tiles_s', 'tasks',
                                   'shard_loads', 'shard_hits',
                                   'shards_evicted', 'cache_peak_mb',
                                   'pairs_deduped',
                                   'speedup_vs_single_arena',
                                   'slowdown_vs_all_resident'}
for r in records:
    required = (arena_required if r['leg'] == 'single_arena'
                else shard_required)
    missing = required - set(r)
    assert not missing, f'record missing {missing}: {r}'
    assert r['bench'] == 'shard_join', r
    # Gate 3: every leg, every repetition, byte-identical to the
    # single-arena join (pairs and relations; verified in-harness).
    assert r['identical'] == 1, f'divergent sharded join: {r}'

by_key = {(r['threads'], r['leg']): r for r in records}
assert set(by_key) >= {(t, leg) for t in (1, 4)
                       for leg in ('single_arena', 'all_resident',
                                   'quarter_budget')}, \
    f'missing (threads, leg) combinations: {sorted(by_key)}'

ratios, slowdowns = {}, {}
for t in (1, 4):
    # Gate 1: with everything resident, sharding (task loop, per-tile
    # MbrJoin, dedup, result merge) may cost at most 10% of the
    # single-arena throughput.
    arena = by_key[(t, 'single_arena')]['pairs_per_sec']
    resident = by_key[(t, 'all_resident')]['pairs_per_sec']
    assert arena > 0, f'zero single-arena throughput at {t} threads'
    ratios[t] = resident / arena
    assert ratios[t] >= 0.9, \
        f'all-resident sharded throughput {ratios[t]:.2f}x < 0.9x at {t}T'
    assert by_key[(t, 'all_resident')]['shards_evicted'] == 0, \
        f'all-resident leg evicted shards at {t} threads'

    # Gate 2: clamping the cache to 25% of the shard bytes (the out-of-core
    # regime; the leg must actually evict) may at most double the wall time.
    quarter = by_key[(t, 'quarter_budget')]
    assert quarter['cache_mb'] <= 0.25 * quarter['shard_bytes_mb'] + 1e-6, \
        f'quarter-budget cache not <= 25% of shard bytes: {quarter}'
    assert quarter['shards_evicted'] > 0, \
        f'quarter-budget leg never evicted at {t} threads'
    slowdowns[t] = quarter['slowdown_vs_all_resident']
    assert slowdowns[t] <= 2.0, \
        f'quarter-budget slowdown {slowdowns[t]:.2f}x > 2x at {t} threads'

with open(sys.argv[2], 'w') as f:
    json.dump(records, f, indent=1)
    f.write('\n')
print(f'{len(records)} records OK (all-resident '
      + ', '.join(f'{t}T {x:.2f}x' for t, x in sorted(ratios.items()))
      + ' of single-arena; quarter-budget '
      + ', '.join(f'{t}T {x:.2f}x' for t, x in sorted(slowdowns.items()))
      + ' of all-resident)')
PY

echo "bench_json: wrote and validated $OUT, $PREPARED_OUT_FINAL, $EXEC_OUT_FINAL, $INTERVAL_OUT_FINAL, $BATCH_OUT_FINAL and $SHARD_OUT_FINAL"
