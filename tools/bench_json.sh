#!/usr/bin/env bash
# Produces the checked-in BENCH_PR2.json at the repo root: a Release build,
# the bench_parallel_scaling thread sweep (MBR filter + P+C find-relation on
# OLE-OPE), and a structural validation of the emitted JSON. Extra arguments
# are forwarded to the bench binary, e.g.:
#
#   tools/bench_json.sh                     # default sweep, default scale
#   tools/bench_json.sh --threads=1,2,4,8   # fixed sweep
#
# EXPERIMENTS.md explains how to read the numbers (and on what hardware the
# committed file was produced).

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_PR2.json"

echo "==== configure + build (Release) ===="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$(nproc)" --target bench_parallel_scaling

echo "==== run bench_parallel_scaling ===="
build/bench/bench_parallel_scaling --json="$OUT" "$@"

echo "==== validate $OUT ===="
python3 -c "
import json, sys
records = json.load(open('$OUT'))
assert isinstance(records, list) and records, 'empty report'
required = {'bench', 'stage', 'scenario', 'threads', 'seconds', 'pairs_per_sec'}
for r in records:
    missing = required - set(r)
    assert not missing, f'record missing {missing}: {r}'
stages = {r['stage'] for r in records}
assert stages == {'mbr_filter', 'find_relation'}, stages
print(f'{len(records)} records OK ({sorted(stages)})')
"

echo "bench_json: wrote and validated $OUT"
