# End-to-end smoke test of stj_cli, driven by ctest:
#   generate -> april -> relate -> join (find-relation and predicate modes).
# Invoked as: cmake -DCLI=<path-to-stj_cli> -DWORK=<scratch-dir> -P cli_test.cmake

if(NOT DEFINED CLI OR NOT DEFINED WORK)
  message(FATAL_ERROR "pass -DCLI=... and -DWORK=...")
endif()
file(MAKE_DIRECTORY ${WORK})

function(run_checked)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
endfunction()

# generate two small datasets
run_checked(${CLI} generate OLE ${WORK}/ole.wkt --scale=0.01 --seed=3)
run_checked(${CLI} generate OPE ${WORK}/ope.wkt --scale=0.01 --seed=3)
foreach(f ole.wkt ope.wkt)
  if(NOT EXISTS ${WORK}/${f})
    message(FATAL_ERROR "missing ${f}")
  endif()
endforeach()

# april precomputation
run_checked(${CLI} april ${WORK}/ole.wkt ${WORK}/ole.april --grid-order=10)
if(NOT EXISTS ${WORK}/ole.april)
  message(FATAL_ERROR "missing ole.april")
endif()

# relate two inline polygons
execute_process(
  COMMAND ${CLI} relate "POLYGON ((0 0, 4 0, 4 4, 0 4))"
          "POLYGON ((1 1, 2 1, 2 2, 1 2))"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "contains")
  message(FATAL_ERROR "relate failed: ${out}")
endif()

# find-relation join, and a predicate join; both methods must agree on count
execute_process(COMMAND ${CLI} join ${WORK}/ole.wkt ${WORK}/ope.wkt
                --method=pc --grid-order=10
                RESULT_VARIABLE rc OUTPUT_VARIABLE pc_out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "pc join failed")
endif()
execute_process(COMMAND ${CLI} join ${WORK}/ole.wkt ${WORK}/ope.wkt
                --method=st2 --grid-order=10
                RESULT_VARIABLE rc OUTPUT_VARIABLE st2_out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "st2 join failed")
endif()
if(NOT pc_out STREQUAL st2_out)
  message(FATAL_ERROR "P+C and ST2 joins disagree:\n--- P+C\n${pc_out}\n--- ST2\n${st2_out}")
endif()

execute_process(COMMAND ${CLI} join ${WORK}/ole.wkt ${WORK}/ope.wkt
                --method=pc --predicate=inside --grid-order=10
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "predicate join failed")
endif()

message(STATUS "stj_cli end-to-end test passed")
