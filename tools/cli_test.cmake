# End-to-end smoke test of stj_cli, driven by ctest:
#   generate -> april -> relate -> join (find-relation and predicate modes),
#   plus the malformed-input exit paths (strict vs permissive loading,
#   aprilcheck, distinct exit codes).
# Invoked as: cmake -DCLI=<path-to-stj_cli> -DWORK=<scratch-dir> -P cli_test.cmake

if(NOT DEFINED CLI OR NOT DEFINED WORK)
  message(FATAL_ERROR "pass -DCLI=... and -DWORK=...")
endif()
file(MAKE_DIRECTORY ${WORK})

function(run_checked)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
endfunction()

# Runs a command that must exit with code ${expect_rc} and whose stderr must
# match ${expect_err} (a regex; "" skips the check).
function(run_expect expect_rc expect_err)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR
            "expected exit ${expect_rc}, got ${rc}: ${ARGN}\n${out}\n${err}")
  endif()
  if(NOT expect_err STREQUAL "" AND NOT err MATCHES "${expect_err}")
    message(FATAL_ERROR
            "stderr of ${ARGN} does not match '${expect_err}':\n${err}")
  endif()
endfunction()

# generate two small datasets
run_checked(${CLI} generate OLE ${WORK}/ole.wkt --scale=0.01 --seed=3)
run_checked(${CLI} generate OPE ${WORK}/ope.wkt --scale=0.01 --seed=3)
foreach(f ole.wkt ope.wkt)
  if(NOT EXISTS ${WORK}/${f})
    message(FATAL_ERROR "missing ${f}")
  endif()
endforeach()

# april precomputation
run_checked(${CLI} april ${WORK}/ole.wkt ${WORK}/ole.april --grid-order=10)
if(NOT EXISTS ${WORK}/ole.april)
  message(FATAL_ERROR "missing ole.april")
endif()

# relate two inline polygons
execute_process(
  COMMAND ${CLI} relate "POLYGON ((0 0, 4 0, 4 4, 0 4))"
          "POLYGON ((1 1, 2 1, 2 2, 1 2))"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "contains")
  message(FATAL_ERROR "relate failed: ${out}")
endif()

# find-relation join, and a predicate join; both methods must agree on count
execute_process(COMMAND ${CLI} join ${WORK}/ole.wkt ${WORK}/ope.wkt
                --method=pc --grid-order=10
                RESULT_VARIABLE rc OUTPUT_VARIABLE pc_out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "pc join failed")
endif()
execute_process(COMMAND ${CLI} join ${WORK}/ole.wkt ${WORK}/ope.wkt
                --method=st2 --grid-order=10
                RESULT_VARIABLE rc OUTPUT_VARIABLE st2_out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "st2 join failed")
endif()
if(NOT pc_out STREQUAL st2_out)
  message(FATAL_ERROR "P+C and ST2 joins disagree:\n--- P+C\n${pc_out}\n--- ST2\n${st2_out}")
endif()

execute_process(COMMAND ${CLI} join ${WORK}/ole.wkt ${WORK}/ope.wkt
                --method=pc --predicate=inside --grid-order=10
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "predicate join failed")
endif()

# The staged batch executor is a pure scheduling layer: the batched join
# must print byte-identical links to the pair-at-a-time run above, and its
# --time-stages summary must include the stage-queue telemetry.
execute_process(COMMAND ${CLI} join ${WORK}/ole.wkt ${WORK}/ope.wkt
                --method=pc --grid-order=10 --batch-size=64 --queue-depth=2
                --threads=4 --time-stages
                RESULT_VARIABLE rc OUTPUT_VARIABLE batched_out
                ERROR_VARIABLE batched_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "batched join failed")
endif()
if(NOT pc_out STREQUAL batched_out)
  message(FATAL_ERROR "batched join diverged from pair-at-a-time:\n--- pair\n${pc_out}\n--- batched\n${batched_out}")
endif()
if(NOT batched_err MATCHES "\\[join\\] stages: filter" OR
   NOT batched_err MATCHES "\\[join\\] batch queue: .* batches .*max depth")
  message(FATAL_ERROR "batched --time-stages summary missing queue telemetry:\n${batched_err}")
endif()

# ---- out-of-core sharded join ----

# Splits a stdout capture into a sorted line list (the sharded join prints
# links sorted by (r, s); the in-memory join prints them in candidate order,
# so equality is up to ordering).
function(sorted_lines text out_var)
  string(REPLACE "\n" ";" lines "${text}")
  list(SORT lines)
  set(${out_var} "${lines}" PARENT_SCOPE)
endfunction()

# The sharded join under a deliberately tiny cache budget must emit exactly
# the links of the in-memory join, and its --time-stages run must surface
# both the shard telemetry and the decoded-record cache counters (the
# sharded path reads compressed APRIL, so the decoded cache engages).
execute_process(COMMAND ${CLI} join ${WORK}/ole.wkt ${WORK}/ope.wkt
                --method=pc --grid-order=10 --shard-dir=${WORK}/shards
                --shard-cache-mb=1 --threads=2 --time-stages
                RESULT_VARIABLE rc OUTPUT_VARIABLE shard_out
                ERROR_VARIABLE shard_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sharded join failed (${rc}):\n${shard_err}")
endif()
sorted_lines("${pc_out}" pc_sorted)
sorted_lines("${shard_out}" shard_sorted)
if(NOT pc_sorted STREQUAL shard_sorted)
  message(FATAL_ERROR "sharded join diverged from in-memory join:\n--- in-memory\n${pc_out}\n--- sharded\n${shard_out}")
endif()
if(NOT shard_err MATCHES "\\[shard\\] .*/r: .* tiles" OR
   NOT shard_err MATCHES "tasks, .* loads / .* hits")
  message(FATAL_ERROR "sharded join missing shard telemetry:\n${shard_err}")
endif()
if(NOT shard_err MATCHES "\\[join\\] decoded cache: .* hits / .* misses")
  message(FATAL_ERROR "sharded --time-stages missing decoded-cache stats:\n${shard_err}")
endif()

# aprilcheck understands shard manifests: the directory and the manifest
# path both route to the shard-set audit.
run_expect(0 "shard set, .* 0 corrupt" ${CLI} aprilcheck ${WORK}/shards/r)
run_expect(0 "shard set, .* 0 corrupt"
           ${CLI} aprilcheck ${WORK}/shards/s/manifest.stj)

# Shard corruption is a distinct failure class: exit 11, naming the tile.
file(APPEND ${WORK}/shards/r/tile_000000.shard "garbage past the layout")
run_expect(11 "tile 0:" ${CLI} aprilcheck ${WORK}/shards/r)

# Predicate mode is not sharded — find-relation only; exit 2 (usage).
run_expect(2 "predicate"
           ${CLI} join ${WORK}/ole.wkt ${WORK}/ope.wkt --predicate=inside
           --shard-dir=${WORK}/shards2)

# ---- malformed-input exit paths ----

# A dataset with one good line, one parse error, one repairable line
# (duplicated consecutive vertex), and one unrepairable line (zero area).
file(WRITE ${WORK}/dirty.wkt
"POLYGON ((0 0, 4 0, 4 4, 0 4))
POLYGON ((0 zero, 1 0, 1 1))
POLYGON ((10 10, 12 10, 12 10, 12 12, 10 12))
POLYGON ((5 5, 6 6, 5 5, 6 6))
")

# Strict load: exit 4 (bad data), message names file, line 2, and the offset.
file(REMOVE ${WORK}/dirty.april)  # scratch dir is reused across runs
run_expect(4 "dirty.wkt:2.*expected"
           ${CLI} april ${WORK}/dirty.wkt ${WORK}/dirty.april)
if(EXISTS ${WORK}/dirty.april)
  message(FATAL_ERROR "strict load must not produce an output file")
endif()

# Permissive load: succeeds on the clean remainder and reports the triage.
run_expect(0 "1 repaired, 2 skipped"
           ${CLI} april ${WORK}/dirty.wkt ${WORK}/dirty.april --permissive)
if(NOT EXISTS ${WORK}/dirty.april)
  message(FATAL_ERROR "permissive load must produce an output file")
endif()

# Missing input file: exit 3 (I/O), message names the file.
run_expect(3 "no_such_file.wkt"
           ${CLI} april ${WORK}/no_such_file.wkt ${WORK}/x.april)

# Inline WKT parse error: exit 4 with a byte offset.
run_expect(4 "@byte" ${CLI} relate "POLYGON ((0 0, 1 0" "POINT (1 1)")

# Unknown method / predicate names: exit 5.
run_expect(5 "unknown method"
           ${CLI} join ${WORK}/ole.wkt ${WORK}/ope.wkt --method=warp)
run_expect(5 "unknown predicate"
           ${CLI} join ${WORK}/ole.wkt ${WORK}/ope.wkt --predicate=touches-ish)

# Unknown flag: exit 2 (usage).
run_expect(2 "unknown flag"
           ${CLI} join ${WORK}/ole.wkt ${WORK}/ope.wkt --frobnicate)

# aprilcheck: healthy file passes, garbage and truncated headers are
# structural errors (exit 4).
run_expect(0 "0 corrupt" ${CLI} aprilcheck ${WORK}/ole.april)

# ---- codec variants ----

# Every codec round-trips through aprilcheck cleanly; the blocked (version 3)
# file additionally passes the deep codec audit.
run_checked(${CLI} april ${WORK}/ole.wkt ${WORK}/ole_compact.april
            --grid-order=10 --codec=compact)
run_expect(0 "version 2 \\(compressed\\)"
           ${CLI} aprilcheck ${WORK}/ole_compact.april)
run_checked(${CLI} april ${WORK}/ole.wkt ${WORK}/ole_blocked.april
            --grid-order=10 --codec=blocked)
run_expect(0 "version 3 \\(blocked\\).*0 corrupt, 0 codec-corrupt"
           ${CLI} aprilcheck ${WORK}/ole_blocked.april)

# Unknown codec name: exit 5.
run_expect(5 "unknown codec"
           ${CLI} april ${WORK}/ole.wkt ${WORK}/x.april --codec=zip)
file(WRITE ${WORK}/garbage.april "this is not an april file at all")
run_expect(4 "bad magic" ${CLI} aprilcheck ${WORK}/garbage.april)
file(WRITE ${WORK}/short.april "APRL")
run_expect(4 "too short" ${CLI} aprilcheck ${WORK}/short.april)

message(STATUS "stj_cli end-to-end test passed")
