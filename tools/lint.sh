#!/usr/bin/env bash
# Repository lint gate. Usage:
#
#   tools/lint.sh                       # lint the tree (CI runs this)
#   tools/lint.sh --self-test           # verify the lints catch violations
#   tools/lint.sh --allow-missing-tools # degrade instead of failing when
#                                       # clang-tidy / libclang are absent
#
# Four layers, strongest available always runs:
#   1. tools/project_lint.py — compiler-free project rules (include layer
#      order, no naked new in src/, commented (void) discards). Always runs.
#   2. Negative-compile tripwire — src/de9im/model_check.cpp must compile
#      cleanly as-is and must FAIL to compile with -DSTJ_MODEL_CORRUPT_BIT
#      (which flips one bit of the `equals` DE-9IM mask). Proves the
#      static_assert layer really gates mask-table corruption. Always runs.
#   3. tools/stj_analyzer.py — the project AST analyzer (status-discard,
#      scope-checkin, loop-alloc, mutex-order, atomic-doc; DESIGN.md §16).
#      Always runs; prefers the libclang frontend, falls back to its
#      built-in lexical frontend when libclang is unusable.
#   4. clang-tidy over compile_commands.json per .clang-tidy.
#
# Missing tools are a HARD ERROR by default: a lint gate that silently
# skips its strongest layers reads as green while checking less, which is
# how regressions slip in between machines. Dev boxes without clang-tidy /
# libclang opt out explicitly with --allow-missing-tools (or
# STJ_LINT_ALLOW_MISSING=1) — the degradation is then stated, not silent.
#
# Exit status is non-zero if any layer finds a problem.

set -uo pipefail
cd "$(dirname "$0")/.."

CXX_BIN="${CXX:-c++}"
fail=0
allow_missing="${STJ_LINT_ALLOW_MISSING:-0}"
self_test_mode=0

for arg in "$@"; do
  case "$arg" in
    --self-test) self_test_mode=1 ;;
    --allow-missing-tools) allow_missing=1 ;;
    *)
      echo "lint: unknown argument '$arg'" >&2
      echo "usage: tools/lint.sh [--self-test] [--allow-missing-tools]" >&2
      exit 2
      ;;
  esac
done

say() { printf '==== %s ====\n' "$*"; }

# A required tool is absent. Fails the run unless --allow-missing-tools.
missing_tool() {
  local tool="$1" hint="$2"
  if [ "$allow_missing" = "1" ]; then
    echo "lint: WARNING: $tool unavailable; layer skipped" \
         "(--allow-missing-tools). The gate is running with reduced" \
         "coverage — do not treat this pass as the CI gate." >&2
    return 0
  fi
  echo "lint: ERROR: $tool is required but unavailable." >&2
  echo "  $hint" >&2
  echo "  Re-run with --allow-missing-tools (or STJ_LINT_ALLOW_MISSING=1)" \
       "to accept a reduced-coverage pass on this machine." >&2
  fail=1
  return 1
}

run_project_lint() {
  say "project lint (python)"
  if ! python3 tools/project_lint.py; then
    fail=1
  fi
}

run_model_tripwire() {
  say "DE-9IM model tripwire (negative compile)"
  if ! "$CXX_BIN" -std=c++20 -fsyntax-only -I. src/de9im/model_check.cpp; then
    echo "lint: model_check.cpp does not compile clean — the mask tables" \
         "or the first-principles model are broken" >&2
    fail=1
  fi
  if "$CXX_BIN" -std=c++20 -fsyntax-only -I. -DSTJ_MODEL_CORRUPT_BIT \
       src/de9im/model_check.cpp 2>/dev/null; then
    echo "lint: corrupting a mask bit DID NOT fail the build — the" \
         "static_assert layer is not guarding the tables" >&2
    fail=1
  else
    echo "tripwire ok: corrupt mask bit fails to compile, pristine compiles"
  fi
}

run_analyzer() {
  say "stj_analyzer (project AST checks)"
  local frontend_flag=""
  if python3 tools/stj_analyzer.py --probe-libclang >/dev/null 2>&1; then
    frontend_flag="--frontend=libclang"
  else
    # libclang is the analyzer's strongest frontend; without it the
    # status-discard check degrades to the lexical scanner.
    if ! missing_tool "libclang (python clang bindings)" \
         "Install clang + python3-clang (Debian); CI's static-analysis job does."; then
      return
    fi
    frontend_flag="--frontend=lexical"
  fi
  if ! python3 tools/stj_analyzer.py "$frontend_flag"; then
    fail=1
  fi
}

run_clang_tidy() {
  say "clang-tidy"
  if ! command -v clang-tidy >/dev/null 2>&1; then
    missing_tool "clang-tidy" \
      "Install clang-tidy (apt install clang-tidy); CI's lint job does." \
      || true
    return
  fi
  local build_dir=build
  if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "configuring $build_dir to produce compile_commands.json"
    if ! cmake --preset default >/dev/null; then
      echo "lint: cmake configure failed" >&2
      fail=1
      return
    fi
  fi
  # Lint every first-party TU in the compilation database.
  local tus
  tus=$(python3 - "$build_dir/compile_commands.json" <<'EOF'
import json, sys
for entry in json.load(open(sys.argv[1])):
    f = entry["file"]
    if "/_deps/" not in f and "/googletest" not in f:
        print(f)
EOF
  )
  # shellcheck disable=SC2086
  if ! clang-tidy -p "$build_dir" --quiet $tus; then
    fail=1
  fi
}

self_test() {
  say "lint self-test"
  if ! python3 tools/project_lint.py --self-test; then
    fail=1
  fi
  if ! python3 tools/stj_analyzer.py --self-test; then
    fail=1
  fi
  # The tripwire's negative compile is itself the self-test for layer 2:
  # it must fail on the seeded corruption and pass on the pristine tree.
  run_model_tripwire
}

if [ "$self_test_mode" = "1" ]; then
  self_test
else
  run_project_lint
  run_model_tripwire
  run_analyzer
  run_clang_tidy
fi

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: OK"
