#!/usr/bin/env bash
# Repository lint gate. Usage:
#
#   tools/lint.sh              # lint the tree (CI runs this)
#   tools/lint.sh --self-test  # verify the lint actually catches violations
#
# Three layers, strongest available always runs:
#   1. tools/project_lint.py — compiler-free project rules (include layer
#      order, no naked new in src/, commented (void) discards). Always runs.
#   2. Negative-compile tripwire — src/de9im/model_check.cpp must compile
#      cleanly as-is and must FAIL to compile with -DSTJ_MODEL_CORRUPT_BIT
#      (which flips one bit of the `equals` DE-9IM mask). Proves the
#      static_assert layer really gates mask-table corruption. Always runs.
#   3. clang-tidy over compile_commands.json per .clang-tidy. Runs only when
#      clang-tidy is installed; CI installs it, dev machines may not.
#
# Exit status is non-zero if any layer finds a problem.

set -uo pipefail
cd "$(dirname "$0")/.."

CXX_BIN="${CXX:-c++}"
fail=0

say() { printf '==== %s ====\n' "$*"; }

run_project_lint() {
  say "project lint (python)"
  if ! python3 tools/project_lint.py; then
    fail=1
  fi
}

run_model_tripwire() {
  say "DE-9IM model tripwire (negative compile)"
  if ! "$CXX_BIN" -std=c++20 -fsyntax-only -I. src/de9im/model_check.cpp; then
    echo "lint: model_check.cpp does not compile clean — the mask tables" \
         "or the first-principles model are broken" >&2
    fail=1
  fi
  if "$CXX_BIN" -std=c++20 -fsyntax-only -I. -DSTJ_MODEL_CORRUPT_BIT \
       src/de9im/model_check.cpp 2>/dev/null; then
    echo "lint: corrupting a mask bit DID NOT fail the build — the" \
         "static_assert layer is not guarding the tables" >&2
    fail=1
  else
    echo "tripwire ok: corrupt mask bit fails to compile, pristine compiles"
  fi
}

run_clang_tidy() {
  say "clang-tidy"
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy not installed; skipping (project lint + tripwire still ran)"
    return
  fi
  local build_dir=build
  if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "configuring $build_dir to produce compile_commands.json"
    if ! cmake --preset default >/dev/null; then
      echo "lint: cmake configure failed" >&2
      fail=1
      return
    fi
  fi
  # Lint every first-party TU in the compilation database.
  local tus
  tus=$(python3 - "$build_dir/compile_commands.json" <<'EOF'
import json, sys
for entry in json.load(open(sys.argv[1])):
    f = entry["file"]
    if "/_deps/" not in f and "/googletest" not in f:
        print(f)
EOF
  )
  # shellcheck disable=SC2086
  if ! clang-tidy -p "$build_dir" --quiet $tus; then
    fail=1
  fi
}

self_test() {
  say "lint self-test"
  if ! python3 tools/project_lint.py --self-test; then
    fail=1
  fi
  # The tripwire's negative compile is itself the self-test for layer 2:
  # it must fail on the seeded corruption and pass on the pristine tree.
  run_model_tripwire
}

if [ "${1:-}" = "--self-test" ]; then
  self_test
else
  run_project_lint
  run_model_tripwire
  run_clang_tidy
fi

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: OK"
