#!/usr/bin/env python3
"""Project-specific lint checks for the stj tree.

These are the checks that need no compiler, so they run everywhere —
including CI images and dev machines without clang-tidy. tools/lint.sh
invokes this script and layers clang-tidy on top when it is available.

Checks:
  layer-order   #include "src/X/..." from src/Y must not point up the layer
                stack. The layering (lower may never include higher):
                    util < {geometry, interval} < {de9im, raster, join}
                         < topology < datasets
                Same-rank sibling includes (e.g. de9im -> raster) are also
                forbidden: a file may include its own layer or any strictly
                lower rank.
  naked-new     No `new` expressions in src/. Ownership goes through
                std::make_unique/containers; the one historical exception
                (mbr_join's atomic cursor array) was migrated.
  void-discard  A `(void)expr;` cast that throws away a value must carry a
                justification comment on the same or the preceding line.
                `(void)sizeof(...)` is exempt (unevaluated no-op idiom used
                by the disabled STJ_DCHECK macros).
  batch-self-contained
                The concurrency primitives behind the staged batch executor
                (src/util/batch*, src/util/*queue*) must stay freestanding:
                quoted includes only from src/util/, angle includes only
                path-free standard headers. The general layer-order rule
                already blocks upward includes; this one additionally bans
                non-layer quoted paths (tests/, bench/, ...) and platform
                headers (<sys/...>, <linux/...>), so the queue and arena
                stay portable and embeddable in any TU, including the tsan
                and scalar-fallback builds.
  platform-confined
                Platform headers (<sys/...>, <linux/...>, <unistd.h>,
                <fcntl.h>, <windows.h>, ...) are allowed in exactly one
                src/ translation unit: src/util/mmap_file.cpp, the mapping
                primitive behind the out-of-core shard layer. Everything
                else in src/ — the shard codec, the scheduler, the whole
                join stack — must stay portable; a new platform dependency
                belongs behind the MappedFile seam, not inline.

Usage:
  tools/project_lint.py             # lint the repo, exit 1 on findings
  tools/project_lint.py --self-test # verify each check flags a seeded
                                    # violation and passes a clean file
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Rank table for the layer-order check. A file under src/<dir>/ may include
# src/<other>/ only when rank[other] < rank[dir] or other == dir.
LAYER_RANK = {
    "util": 0,
    "geometry": 1,
    "interval": 1,
    "de9im": 2,
    "raster": 2,
    "join": 2,
    "topology": 3,
    "datasets": 4,
}

SOURCE_DIRS = ("src", "bench", "examples", "tools", "tests")
SOURCE_EXTS = (".cpp", ".h")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"src/([a-z0-9_]+)/')
NEW_RE = re.compile(r"\bnew\b(?!\s*\()")  # `new (place)` would still match Type
VOID_CAST_RE = re.compile(r"\(\s*void\s*\)\s*(?!sizeof\b)[A-Za-z_:(]")

# Files held to the batch-self-contained rule: the staged executor's
# concurrency primitives under src/util/.
BATCH_PRIMITIVE_RE = re.compile(
    r"^src/util/(?:batch[a-z0-9_]*|[a-z0-9_]*queue[a-z0-9_]*)\.(?:h|cpp)$"
)
QUOTED_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
ANGLE_INCLUDE_RE = re.compile(r"^\s*#\s*include\s+<([^>]+)>")

# Platform headers for the platform-confined rule: OS-specific directories
# plus the usual POSIX/Windows flat headers. <cstdio> & co. are standard and
# never match.
PLATFORM_HEADER_RE = re.compile(
    r"^(?:sys|linux|arpa|netinet|mach)/"
    r"|^(?:unistd|fcntl|windows|winsock2|io|dirent|pwd|sched)\.h$"
)
# The single src/ TU allowed to include platform headers.
PLATFORM_ALLOWED = "src/util/mmap_file.cpp"


def strip_comments_and_strings(line, state):
    """Blanks out comment and string-literal bodies, preserving length.

    `state` is True while inside a /* block comment that started on an
    earlier line. Returns (code_line, had_comment, new_state).
    """
    out = []
    had_comment = state
    i = 0
    in_block = state
    while i < len(line):
        c = line[i]
        nxt = line[i + 1] if i + 1 < len(line) else ""
        if in_block:
            had_comment = True
            if c == "*" and nxt == "/":
                in_block = False
                i += 2
            else:
                i += 1
            out.append(" ")
            if c == "*" and nxt == "/":
                out.append(" ")
            continue
        if c == "/" and nxt == "/":
            had_comment = True
            break  # rest of line is a comment
        if c == "/" and nxt == "*":
            in_block = True
            had_comment = True
            out.append("  ")
            i += 2
            continue
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < len(line):
                if line[i] == "\\":
                    out.append("  ")
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(quote)
                    i += 1
                    break
                out.append(" ")
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out), had_comment, in_block


def lint_file(path, rel, errors):
    layer = None
    parts = rel.parts
    if parts[0] == "src" and len(parts) > 2 and parts[1] in LAYER_RANK:
        layer = parts[1]
    batch_primitive = BATCH_PRIMITIVE_RE.match(rel.as_posix()) is not None

    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as e:
        errors.append(f"{rel}: unreadable: {e}")
        return

    in_block = False
    prev_had_comment = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        was_in_block = in_block
        code, had_comment, in_block = strip_comments_and_strings(raw, in_block)

        # Includes are matched on the raw line: the stripper blanks string
        # bodies, which would erase the quoted include path. Lines that start
        # inside a block comment are skipped; `// #include` never matches the
        # anchored pattern.
        m = INCLUDE_RE.match(raw) if not was_in_block else None
        if m and layer is not None:
            target = m.group(1)
            if target in LAYER_RANK and target != layer and (
                LAYER_RANK[target] >= LAYER_RANK[layer]
            ):
                errors.append(
                    f"{rel}:{lineno}: [layer-order] src/{layer}/ (rank "
                    f"{LAYER_RANK[layer]}) must not include src/{target}/ "
                    f"(rank {LAYER_RANK[target]})"
                )

        if batch_primitive and not was_in_block:
            qm = QUOTED_INCLUDE_RE.match(raw)
            am = ANGLE_INCLUDE_RE.match(raw)
            if qm and not qm.group(1).startswith("src/util/"):
                errors.append(
                    f"{rel}:{lineno}: [batch-self-contained] batch/queue "
                    f'primitive must not include "{qm.group(1)}"; only '
                    f"src/util/ headers are allowed"
                )
            elif am and "/" in am.group(1):
                errors.append(
                    f"{rel}:{lineno}: [batch-self-contained] batch/queue "
                    f"primitive must not include <{am.group(1)}>; only "
                    f"path-free standard headers are allowed"
                )

        if parts[0] == "src" and not was_in_block:
            am = ANGLE_INCLUDE_RE.match(raw)
            if (
                am
                and PLATFORM_HEADER_RE.match(am.group(1))
                and rel.as_posix() != PLATFORM_ALLOWED
            ):
                errors.append(
                    f"{rel}:{lineno}: [platform-confined] platform header "
                    f"<{am.group(1)}> outside {PLATFORM_ALLOWED}; route "
                    f"platform access through the MappedFile seam"
                )

        if parts[0] == "src" and NEW_RE.search(code):
            errors.append(
                f"{rel}:{lineno}: [naked-new] `new` expression in src/; use "
                f"std::make_unique or a container"
            )

        if VOID_CAST_RE.search(code) and not had_comment and not prev_had_comment:
            errors.append(
                f"{rel}:{lineno}: [void-discard] `(void)` discard without a "
                f"justification comment on this or the preceding line"
            )

        prev_had_comment = had_comment

    if in_block:
        errors.append(f"{rel}: unterminated block comment")


def collect_files():
    files = []
    for top in SOURCE_DIRS:
        root = REPO / top
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in SOURCE_EXTS and path.is_file():
                files.append(path)
    return files


def run_lint():
    errors = []
    files = collect_files()
    for path in files:
        lint_file(path, path.relative_to(REPO), errors)
    for e in errors:
        print(e)
    print(
        f"project_lint: {len(files)} files, {len(errors)} finding(s)",
        file=sys.stderr,
    )
    return 1 if errors else 0


def self_test():
    """Each check must flag its seeded violation and pass a clean file."""
    import tempfile

    cases = [
        (
            "layer-order",
            "src/util/bad.h",
            '#include "src/topology/pipeline.h"\n',
        ),
        (
            "naked-new",
            "src/join/bad.cpp",
            "void F() { int* p = new int[4]; delete[] p; }\n",
        ),
        (
            "void-discard",
            "src/util/bad2.cpp",
            "void F() { (void)G(); }\n",
        ),
        (
            # A platform header and a non-layer quoted path: neither is
            # caught by layer-order, both must trip the freestanding rule.
            "batch-self-contained",
            "src/util/batch_bad_queue.h",
            "#include <sys/mman.h>\n"
            '#include "tests/support/fixtures.h"\n',
        ),
        (
            # A POSIX header in an ordinary src/ TU must trip the
            # confinement even though layer-order has nothing to say.
            "platform-confined",
            "src/raster/bad_platform.cpp",
            "#include <unistd.h>\n",
        ),
    ]
    cleans = [
        (
            "src/raster/good.cpp",
            "// fine: includes down-stack, commented discard, sizeof no-op\n"
            '#include "src/interval/interval_list.h"\n'
            "void F() {\n"
            "  (void)sizeof(int);\n"
            "  // Discarded: probe for side effects only.\n"
            "  (void)G();\n"
            "}\n",
        ),
        (
            # Mirrors the real mpmc_queue.h/batch_arena.h include set: std
            # headers plus a src/util sibling are all the rule permits.
            "src/util/batch_good.h",
            "#include <atomic>\n"
            "#include <deque>\n"
            '#include "src/util/thread_annotations.h"\n',
        ),
        (
            # The one allowlisted TU: platform headers here are the point.
            "src/util/mmap_file.cpp",
            "#include <sys/mman.h>\n"
            "#include <unistd.h>\n"
            "#include <fcntl.h>\n",
        ),
    ]

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        global REPO
        real_repo = REPO
        REPO = Path(tmp)
        try:
            for tag, rel, content in cases:
                path = Path(tmp) / rel
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(content)
                errors = []
                lint_file(path, path.relative_to(Path(tmp)), errors)
                if not any(f"[{tag}]" in e for e in errors):
                    failures.append(f"seeded {tag} violation not flagged")
                path.unlink()

            for rel, content in cleans:
                path = Path(tmp) / rel
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(content)
                errors = []
                lint_file(path, path.relative_to(Path(tmp)), errors)
                if errors:
                    failures.append(f"clean file {rel} flagged: {errors}")
                path.unlink()
        finally:
            REPO = real_repo

    for f in failures:
        print(f"project_lint self-test FAILED: {f}", file=sys.stderr)
    if not failures:
        print("project_lint self-test passed", file=sys.stderr)
    return 1 if failures else 0


def main():
    if "--self-test" in sys.argv[1:]:
        return self_test()
    return run_lint()


if __name__ == "__main__":
    sys.exit(main())
