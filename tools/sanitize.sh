#!/usr/bin/env bash
# Builds and runs the test suite under the sanitizer presets defined in
# CMakePresets.json. Usage:
#
#   tools/sanitize.sh              # asan-ubsan, tsan, then invariants
#   tools/sanitize.sh asan-ubsan   # just one preset
#   tools/sanitize.sh tsan
#   tools/sanitize.sh invariants
#
# asan-ubsan runs the full suite; the tsan test preset restricts itself to
# the thread-heavy tests (parallel fan-out, degraded pipelines, progressive)
# where data races could actually hide — TSan slows everything ~10x and the
# single-threaded geometry tests cannot race. The invariants preset turns on
# the contract macros (STJ_DCHECK*) and the deep ValidateInvariants()
# structure validators inside the library, catching broken data-structure
# state that sanitizers cannot see (they check memory, not meaning).

set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(asan-ubsan tsan invariants)
fi

for preset in "${presets[@]}"; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "==== [$preset] test ===="
  ctest --preset "$preset" -j "$(nproc)"
done

echo "sanitize: all presets clean"
