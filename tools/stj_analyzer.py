#!/usr/bin/env python3
"""Project AST analyzer for the stj tree (DESIGN.md §16).

Where tools/project_lint.py enforces token-level repository rules, this
analyzer enforces *semantic* project rules that need (at least) a parse of
the code: result-discard detection beyond `[[nodiscard]]`, cancellation
polling in worker loops, allocation discipline in hot loops, lock-order
consistency, and the STJ_ATOMIC_DOC convention for lock-free fields.

Frontends
---------
The analyzer prefers **libclang** (`clang.cindex`) when it is importable
and a libclang shared library can be loaded: the `status-discard` check
then runs on the real AST (catching discards through references, ternary
selections, and any other expression shape, because it tests the *type* of
each unused-value expression, not the callee's name). When libclang is
absent it falls back to the built-in **lexical** frontend — a
comment/string-aware statement scanner driven by the project's own
function inventory — so the analyzer runs everywhere the test suite runs.
`tools/lint.sh` treats a missing libclang as a hard error unless invoked
with --allow-missing-tools; this script itself degrades loudly, not
silently (the active frontend is always printed).

Checks
------
  status-discard   A call to a function returning stj::Status or
                   stj::Result<T> whose value is discarded. Goes beyond the
                   class-level [[nodiscard]] warning: the lexical frontend
                   flags bare-call statements and both arms of discarded
                   ternaries; the libclang frontend flags *any*
                   unused-value expression of those types, including calls
                   reached through function references. `(void)` casts are
                   exempt (project_lint.py separately requires their
                   justification comment).
  scope-checkin    Every internal::RunWorkers worker body must poll
                   cooperative cancellation: the lambda must create an
                   ExecContext::Scope or call CheckIn(). RunWorkers is the
                   repo's work-stealing primitive; a worker loop that never
                   checks in turns a deadline into a hang.
  loop-alloc       No fresh heap allocation inside loop bodies of the hot
                   refinement/filter TUs (HOT_FILES): no `new`, no
                   make_unique/make_shared, no fresh owning-container
                   declarations. Arena acquisition (BatchArena::Acquire)
                   and explicitly allow-commented lines are exempt.
  mutex-order      Lock-order consistency: the digraph of observed nested
                   guard acquisitions (lock_guard/unique_lock/scoped_lock
                   inside a scope already holding another guard) plus the
                   order declared via STJ_ACQUIRED_AFTER/STJ_ACQUIRED_BEFORE
                   annotations must be acyclic. --lock-table prints the
                   combined table (the DESIGN.md §16 lock-order table is
                   generated from it).
  atomic-doc       Every `std::atomic` declaration in src/ must carry an
                   STJ_ATOMIC_DOC("...") annotation on the declaration line
                   or within the five preceding lines, naming writers,
                   readers, and the memory-order argument
                   (src/util/thread_annotations.h).

Suppression: a line (or its predecessor) containing
`stj-analyzer: allow(<check>)` suppresses that check there; the comment is
the justification, so an empty reason reads as what it is.

Usage
-----
  tools/stj_analyzer.py                 # analyze the tree, exit 1 on findings
  tools/stj_analyzer.py --self-test     # every check must catch its seeded
                                        # violations and pass clean files
  tools/stj_analyzer.py --frontend=lexical|libclang|auto
  tools/stj_analyzer.py --probe-libclang  # exit 0 iff libclang is usable
  tools/stj_analyzer.py --lock-table    # print the derived lock-order table
"""

import argparse
import json
import os
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from project_lint import strip_comments_and_strings  # noqa: E402

REPO = Path(__file__).resolve().parent.parent

# Directories the analyzer walks. Tests and benches intentionally discard
# some results inside EXPECT scaffolding, so the semantic checks run on the
# library, tools, and examples — the code that ships.
ANALYZED_DIRS = ("src", "tools", "examples")
SOURCE_EXTS = (".cpp", ".h")

# Hot TUs held to the loop-alloc rule: the per-pair refinement/filter inner
# loops, the batched executor, and the SIMD kernels. Caches that allocate on
# a miss by design (decoded_block_cache) are *not* listed — their allocation
# is the product, not a leak of discipline.
HOT_FILES = {
    "src/topology/batch_executor.cpp",
    "src/topology/parallel.cpp",
    "src/topology/find_relation.cpp",
    "src/topology/intermediate_filters.cpp",
    "src/topology/relate_predicate.cpp",
    "src/join/mbr_join.cpp",
    "src/interval/interval_algebra.cpp",
    "src/interval/interval_algebra_compressed.cpp",
    "src/interval/simd_scalar.cpp",
    "src/interval/simd_avx2.cpp",
    "src/interval/simd_neon.cpp",
}

ALLOW_RE = re.compile(r"stj-analyzer:\s*allow\(([a-z-]+)\)")

CHECKS = ("status-discard", "scope-checkin", "loop-alloc", "mutex-order",
          "atomic-doc")


# ---------------------------------------------------------------------------
# Shared file model
# ---------------------------------------------------------------------------

class CodeFile:
    """One source file: raw lines plus comment/string-stripped code lines."""

    def __init__(self, path, rel):
        self.path = path
        self.rel = rel
        self.raw = path.read_text(encoding="utf-8").splitlines()
        self.code = []
        in_block = False
        for line in self.raw:
            code, _, in_block = strip_comments_and_strings(line, in_block)
            self.code.append(code)

    def allowed(self, lineno, check):
        """True when `stj-analyzer: allow(check)` covers raw line (1-based)."""
        for ln in (lineno - 1, lineno - 2):
            if 0 <= ln < len(self.raw):
                m = ALLOW_RE.search(self.raw[ln])
                if m and m.group(1) == check:
                    return True
        return False


def collect_files(dirs=ANALYZED_DIRS):
    files = []
    for top in dirs:
        root = REPO / top
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in SOURCE_EXTS and path.is_file():
                files.append(CodeFile(path, path.relative_to(REPO)))
    return files


# ---------------------------------------------------------------------------
# Check: status-discard (lexical)
# ---------------------------------------------------------------------------

# A declaration line introducing a function that returns Status or Result<T>.
DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?(?:static\s+|virtual\s+|inline\s+)*"
    r"(?:stj::)?(?:Status|Result<[^;={]*>)\s+"
    r"(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\("
)

# Functions whose names collide with common identifiers enough to make the
# lexical name-match noisy. The libclang frontend needs no such list.
INVENTORY_SKIP = {"Ok", "Get", "ToStatus"}

STMT_KEYWORD_RE = re.compile(
    r"^\s*(?:return|if|else|for|while|do|switch|case|default|goto|throw|"
    r"delete|using|typedef|template|namespace|public|private|protected|"
    r"break|continue|co_return|co_await|static_assert|sizeof|#)\b"
)

BARE_CALL_RE = re.compile(r"^\s*(?:[A-Za-z_]\w*(?:\.|->|::))*([A-Za-z_]\w*)\s*\(")


def build_status_inventory(files):
    """Names of functions/methods declared to return Status or Result<T>."""
    names = set()
    for f in files:
        for code in f.code:
            m = DECL_RE.match(code)
            if m and m.group(1) not in INVENTORY_SKIP:
                names.add(m.group(1))
    return names


def iter_statements(f):
    """Yields (start_lineno_1based, statement_text) for `;`-terminated
    statements, accumulated across lines with paren balancing. Brace lines
    reset the accumulator (control flow / definitions, not expression
    statements)."""
    buf = []
    start = None
    depth = 0
    for i, code in enumerate(f.code):
        stripped = code.strip()
        if not stripped:
            continue
        if start is None:
            start = i + 1
        buf.append(stripped)
        depth += stripped.count("(") - stripped.count(")")
        if depth <= 0:
            text = " ".join(buf)
            if stripped.endswith(";") and "{" not in text and "}" not in text:
                yield start, text
            if stripped.endswith((";", "{", "}")) or depth < 0:
                buf, start, depth = [], None, 0


def top_level_split_ternary(stmt):
    """For `cond ? a : b;` statements, returns [a, b] (top paren level only);
    otherwise []."""
    depth = 0
    q = c = -1
    for i, ch in enumerate(stmt):
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        elif ch == "?" and depth == 0 and q < 0:
            # `?:` of a ternary, not part of an identifier.
            q = i
        elif ch == ":" and depth == 0 and q >= 0 and c < 0:
            if i > 0 and (stmt[i - 1] == ":" or
                          (i + 1 < len(stmt) and stmt[i + 1] == ":")):
                continue  # `::` qualifier
            c = i
    if q < 0 or c < 0:
        return []
    return [stmt[q + 1:c].strip(), stmt[c + 1:].rstrip("; ").strip()]


def has_top_level_assign(stmt):
    """True when the statement assigns at the top paren level (`=`, `+=`...),
    i.e. the call result may be consumed."""
    depth = 0
    for i, ch in enumerate(stmt):
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        elif ch == "=" and depth == 0:
            prev = stmt[i - 1] if i > 0 else ""
            nxt = stmt[i + 1] if i + 1 < len(stmt) else ""
            if prev not in "=!<>+-*/%&|^" and nxt != "=":
                return True
    return False


def check_status_discard_lexical(files, errors):
    inventory = build_status_inventory(files)
    for f in files:
        for lineno, stmt in iter_statements(f):
            if STMT_KEYWORD_RE.match(stmt) or has_top_level_assign(stmt):
                continue
            if "(void)" in stmt.replace(" ", ""):
                continue  # justified discard; project_lint owns the comment
            candidates = [stmt]
            candidates += top_level_split_ternary(stmt)
            for expr in candidates:
                m = BARE_CALL_RE.match(expr)
                if m and m.group(1) in inventory:
                    if f.allowed(lineno, "status-discard"):
                        continue
                    errors.append(
                        f"{f.rel}:{lineno}: [status-discard] result of "
                        f"'{m.group(1)}' (returns Status/Result) is discarded; "
                        f"handle it or cast to (void) with a justification"
                    )
                    break


# ---------------------------------------------------------------------------
# Check: status-discard (libclang)
# ---------------------------------------------------------------------------

class LibclangFrontend:
    """AST frontend over clang.cindex. Instantiation raises RuntimeError with
    a human-readable reason when libclang is unusable."""

    LIB_GLOBS = (
        "/usr/lib/llvm-*/lib/libclang.so*",
        "/usr/lib/*/libclang.so*",
        "/usr/local/lib/libclang.so*",
    )

    def __init__(self):
        try:
            import clang.cindex as cindex  # noqa: PLC0415
        except ImportError as e:
            raise RuntimeError(f"python clang bindings not importable: {e}")
        self.cindex = cindex
        try:
            self.index = cindex.Index.create()
        except Exception:  # library not found at the default name
            import glob
            for pattern in self.LIB_GLOBS:
                for lib in sorted(glob.glob(pattern), reverse=True):
                    try:
                        cindex.Config.loaded = False
                        cindex.Config.set_library_file(lib)
                        self.index = cindex.Index.create()
                        break
                    except Exception:
                        continue
                else:
                    continue
                break
            else:
                raise RuntimeError("no loadable libclang shared library found")

    def compile_args(self):
        """Per-file compile args: from build/compile_commands.json when
        present, a plain -std=c++20 -I. fallback otherwise."""
        args = {}
        ccdb = REPO / "build" / "compile_commands.json"
        if ccdb.is_file():
            for entry in json.loads(ccdb.read_text()):
                flags = [a for a in entry["command"].split()[1:]
                         if not a.endswith(".o") and a not in ("-c", "-o")]
                args[os.path.realpath(entry["file"])] = flags
        return args

    def unused_status_calls(self, path):
        """Yields (line, callee_spelling) for unused-value expressions of
        type stj::Status / stj::Result<...> in one TU."""
        cindex = self.cindex
        args = self.compile_args().get(
            os.path.realpath(str(path)),
            ["-std=c++20", f"-I{REPO}"])
        tu = self.index.parse(str(path), args=args)
        findings = []

        def result_typed(node):
            t = node.type.spelling
            return ("Status" in t or "Result<" in t) and "*" not in t

        def walk(node, parent_is_compound):
            is_stmt_child = parent_is_compound
            if node.kind == cindex.CursorKind.COMPOUND_STMT:
                for child in node.get_children():
                    walk(child, True)
                return
            if is_stmt_child and node.kind in (
                    cindex.CursorKind.CALL_EXPR,
                    cindex.CursorKind.CONDITIONAL_OPERATOR):
                if result_typed(node):
                    findings.append((node.location.line, node.spelling or
                                     "<expression>"))
            for child in node.get_children():
                walk(child, False)

        cursor = tu.cursor
        for node in cursor.walk_preorder():
            if (node.kind == cindex.CursorKind.COMPOUND_STMT and
                    node.location.file and
                    os.path.realpath(node.location.file.name) ==
                    os.path.realpath(str(path))):
                for child in node.get_children():
                    walk(child, True)
        return findings


def check_status_discard_libclang(files, errors, frontend):
    for f in files:
        if f.path.suffix != ".cpp":
            continue
        try:
            findings = frontend.unused_status_calls(f.path)
        except Exception as e:  # parse failure: fall back loudly
            errors.append(f"{f.rel}: [status-discard] libclang parse failed: "
                          f"{e}")
            continue
        for line, callee in findings:
            if f.allowed(line, "status-discard"):
                continue
            errors.append(
                f"{f.rel}:{line}: [status-discard] unused Status/Result value "
                f"from '{callee}' (libclang)"
            )


# ---------------------------------------------------------------------------
# Check: scope-checkin
# ---------------------------------------------------------------------------

RUNWORKERS_RE = re.compile(r"\bRunWorkers\s*\(")
# Files that define/forward the primitive rather than consume it.
SCOPE_CHECK_EXEMPT = {"src/util/parallel_for.h", "src/util/parallel_for.cpp"}


def extract_call(f, start_line, start_col):
    """Returns (text, end_line) of a call's argument list via paren
    matching over stripped code, starting at the '(' given by
    (start_line 0-based, column)."""
    depth = 0
    parts = []
    line = start_line
    col = start_col
    while line < len(f.code):
        segment = f.code[line][col:]
        for i, ch in enumerate(segment):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    parts.append(segment[:i + 1])
                    return "\n".join(parts), line
        parts.append(segment)
        line += 1
        col = 0
    return "\n".join(parts), line


def check_scope_checkin(files, errors):
    for f in files:
        if str(f.rel) in SCOPE_CHECK_EXEMPT:
            continue
        for i, code in enumerate(f.code):
            m = RUNWORKERS_RE.search(code)
            if not m:
                continue
            body, _ = extract_call(f, i, m.end() - 1)
            if ("ExecContext::Scope" in body or ".CheckIn(" in body or
                    "scope.stopped" in body):
                continue
            if f.allowed(i + 1, "scope-checkin"):
                continue
            errors.append(
                f"{f.rel}:{i + 1}: [scope-checkin] RunWorkers body neither "
                f"creates an ExecContext::Scope nor calls CheckIn(); a "
                f"worker loop that never polls turns deadlines into hangs"
            )


# ---------------------------------------------------------------------------
# Check: loop-alloc
# ---------------------------------------------------------------------------

LOOP_HEAD_RE = re.compile(r"\b(?:for|while)\s*\(")
ALLOC_RES = (
    (re.compile(r"\bnew\b(?!\s*\()"), "`new` expression"),
    (re.compile(r"\bstd::make_unique\s*<"), "make_unique"),
    (re.compile(r"\bstd::make_shared\s*<"), "make_shared"),
    (re.compile(
        r"(?:^|[\s(])(?:std::)?(?:vector|deque|list|map|set|unordered_map|"
        r"unordered_set|string)\s*<[^;=]*>\s+[a-z_]\w*\s*[;({=]"),
     "fresh owning-container declaration"),
)
ARENA_EXEMPT_RE = re.compile(r"\.Acquire\s*\(")


def check_loop_alloc(files, errors):
    hot = {Path(p) for p in HOT_FILES}
    for f in files:
        if f.rel not in hot:
            continue
        # Depth-tracked scan: `loop_depths` holds the brace depth at which
        # each currently-open loop body started.
        depth = 0
        loop_depths = []
        pending_loop = False
        for i, code in enumerate(f.code):
            if LOOP_HEAD_RE.search(code):
                pending_loop = True
            for ch in code:
                if ch == "{":
                    depth += 1
                    if pending_loop:
                        loop_depths.append(depth)
                        pending_loop = False
                elif ch == "}":
                    if loop_depths and loop_depths[-1] == depth:
                        loop_depths.pop()
                    depth -= 1
            if not loop_depths:
                continue
            if ARENA_EXEMPT_RE.search(code):
                continue  # recycling arena: the allowed acquisition path
            for alloc_re, what in ALLOC_RES:
                if alloc_re.search(code):
                    if f.allowed(i + 1, "loop-alloc"):
                        break
                    errors.append(
                        f"{f.rel}:{i + 1}: [loop-alloc] {what} inside a hot "
                        f"loop body; hoist it, reuse scratch, or go through "
                        f"an arena"
                    )
                    break


# ---------------------------------------------------------------------------
# Check: mutex-order
# ---------------------------------------------------------------------------

GUARD_RE = re.compile(
    r"\b(?:std::)?(?:lock_guard|unique_lock|scoped_lock)\s*<[^>]*>\s+"
    r"\w+\s*(?:\(|\{)([^;]*?)(?:\)|\})\s*;"
)
CLASS_RE = re.compile(r"^\s*(?:class|struct)\s+([A-Za-z_]\w*)")
ACQ_AFTER_RE = re.compile(
    r"(\w+)\s+STJ_ACQUIRED_AFTER\s*\(([^)]*)\)")
ACQ_BEFORE_RE = re.compile(
    r"(\w+)\s+STJ_ACQUIRED_BEFORE\s*\(([^)]*)\)")


def mutex_id(expr, owner):
    expr = expr.split(",")[0].strip().replace("this->", "")
    return f"{owner}::{expr}" if owner else expr


def check_mutex_order(files, errors, print_table=False):
    edges = {}  # (a, b) -> first location; a acquired before b

    for f in files:
        if f.rel.parts[0] != "src":
            continue
        owner = None
        depth = 0
        guard_stack = []  # (depth, mutex_id)
        for i, code in enumerate(f.code):
            if code.lstrip().startswith("#"):
                continue  # the annotation macros' own definitions
            cm = CLASS_RE.match(code)
            if cm and depth <= 1:
                owner = cm.group(1)
            for m in ACQ_AFTER_RE.finditer(code):
                this_mu = mutex_id(m.group(1), owner)
                for other in m.group(2).split(","):
                    edges.setdefault(
                        (mutex_id(other, owner), this_mu),
                        f"{f.rel}:{i + 1} (declared)")
            for m in ACQ_BEFORE_RE.finditer(code):
                this_mu = mutex_id(m.group(1), owner)
                for other in m.group(2).split(","):
                    edges.setdefault(
                        (this_mu, mutex_id(other, owner)),
                        f"{f.rel}:{i + 1} (declared)")
            gm = GUARD_RE.search(code)
            if gm:
                mu = mutex_id(gm.group(1), owner)
                for _, held in guard_stack:
                    if held != mu:
                        edges.setdefault((held, mu), f"{f.rel}:{i + 1}")
                guard_stack.append((depth, mu))
            for ch in code:
                if ch == "{":
                    depth += 1
                elif ch == "}":
                    depth -= 1
                    while guard_stack and guard_stack[-1][0] >= depth:
                        guard_stack.pop()
            if depth == 0:
                guard_stack.clear()

    if print_table:
        print("lock-order table (acquire left before right):")
        for (a, b), where in sorted(edges.items()):
            print(f"  {a} -> {b}    [{where}]")
        if not edges:
            print("  (no nested acquisitions, no declared order: "
                  "single-lock discipline)")

    # Cycle detection over the combined declared+observed digraph.
    adjacency = {}
    for (a, b) in edges:
        adjacency.setdefault(a, []).append(b)
    state = {}

    def dfs(node, stack):
        state[node] = 1
        stack.append(node)
        for nxt in adjacency.get(node, ()):
            if state.get(nxt, 0) == 1:
                cycle = stack[stack.index(nxt):] + [nxt]
                errors.append(
                    "[mutex-order] lock-order cycle: " + " -> ".join(cycle) +
                    "  (" + "; ".join(
                        edges.get((x, y), "?")
                        for x, y in zip(cycle, cycle[1:])) + ")")
            elif state.get(nxt, 0) == 0:
                dfs(nxt, stack)
        stack.pop()
        state[node] = 2

    for node in list(adjacency):
        if state.get(node, 0) == 0:
            dfs(node, [])


# ---------------------------------------------------------------------------
# Check: atomic-doc
# ---------------------------------------------------------------------------

ATOMIC_DECL_RE = re.compile(r"\bstd::atomic\s*<")
ATOMIC_DOC_EXEMPT = {"src/util/thread_annotations.h"}


def check_atomic_doc(files, errors):
    for f in files:
        if f.rel.parts[0] != "src" or str(f.rel) in ATOMIC_DOC_EXEMPT:
            continue
        for i, code in enumerate(f.code):
            if not ATOMIC_DECL_RE.search(code):
                continue
            if not code.rstrip().endswith(";"):
                continue  # parameter/continuation line, not a declaration
            window = "\n".join(f.raw[max(0, i - 5):i + 1])
            if "STJ_ATOMIC_DOC(" in window:
                continue
            if f.allowed(i + 1, "atomic-doc"):
                continue
            errors.append(
                f"{f.rel}:{i + 1}: [atomic-doc] std::atomic declaration "
                f"without an STJ_ATOMIC_DOC rationale (writers, readers, "
                f"memory order) on this or the five preceding lines"
            )


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def make_frontend(kind):
    """Returns (name, frontend_or_None). Raises SystemExit(2) when a forced
    libclang frontend is unavailable."""
    if kind == "lexical":
        return "lexical", None
    try:
        fe = LibclangFrontend()
        return "libclang", fe
    except RuntimeError as e:
        if kind == "libclang":
            print(f"stj_analyzer: libclang frontend required but unusable: "
                  f"{e}", file=sys.stderr)
            raise SystemExit(2)
        print(f"stj_analyzer: libclang unavailable ({e}); "
              f"falling back to the lexical frontend", file=sys.stderr)
        return "lexical", None


def run_checks(files, checks, frontend_kind, frontend, print_table=False):
    errors = []
    if "status-discard" in checks:
        if frontend is not None:
            check_status_discard_libclang(files, errors, frontend)
            # The lexical pass still runs on headers (not in the ccdb).
            check_status_discard_lexical(
                [f for f in files if f.path.suffix == ".h"], errors)
        else:
            check_status_discard_lexical(files, errors)
    if "scope-checkin" in checks:
        check_scope_checkin(files, errors)
    if "loop-alloc" in checks:
        check_loop_alloc(files, errors)
    if "mutex-order" in checks:
        check_mutex_order(files, errors, print_table=print_table)
    if "atomic-doc" in checks:
        check_atomic_doc(files, errors)
    return errors


def run_tree(args):
    frontend_kind, frontend = make_frontend(args.frontend)
    files = collect_files()
    checks = args.checks.split(",") if args.checks else list(CHECKS)
    for c in checks:
        if c not in CHECKS:
            print(f"stj_analyzer: unknown check '{c}'", file=sys.stderr)
            return 2
    errors = run_checks(files, checks, frontend_kind, frontend,
                        print_table=args.lock_table)
    for e in errors:
        print(e)
    print(
        f"stj_analyzer[{frontend_kind}]: {len(files)} files, "
        f"{len(checks)} checks, {len(errors)} finding(s)",
        file=sys.stderr,
    )
    return 1 if errors else 0


# ---------------------------------------------------------------------------
# Self-test: each check must flag its seeded violations and pass clean files
# ---------------------------------------------------------------------------

SELF_TEST_VIOLATIONS = [
    (
        "status-discard",
        "src/join/bad_discard.cpp",
        # Bare call and a discarded ternary, both of inventory functions.
        "Status DoWrite(int x);\n"
        "Status DoSync(int x);\n"
        "void F(bool flag) {\n"
        "  DoWrite(1);\n"
        "  flag ? DoWrite(2) : DoSync(3);\n"
        "}\n",
        2,
    ),
    (
        "scope-checkin",
        "src/topology/bad_workers.cpp",
        "void F(unsigned threads) {\n"
        "  internal::RunWorkers(threads, [&](unsigned worker) {\n"
        "    DoChunk(worker);\n"
        "  });\n"
        "}\n",
        1,
    ),
    (
        "loop-alloc",
        "src/topology/parallel.cpp",  # must be a HOT_FILES member
        "void F(int n) {\n"
        "  for (int i = 0; i < n; ++i) {\n"
        "    auto p = std::make_unique<int>(i);\n"
        "    std::vector<int> scratch(n);\n"
        "    Use(p.get(), scratch);\n"
        "  }\n"
        "}\n",
        2,
    ),
    (
        "mutex-order",
        "src/util/bad_order.cpp",
        "void A() {\n"
        "  std::lock_guard<std::mutex> l1(mu_a);\n"
        "  {\n"
        "    std::lock_guard<std::mutex> l2(mu_b);\n"
        "  }\n"
        "}\n"
        "void B() {\n"
        "  std::lock_guard<std::mutex> l1(mu_b);\n"
        "  {\n"
        "    std::lock_guard<std::mutex> l2(mu_a);\n"
        "  }\n"
        "}\n",
        1,
    ),
    (
        "atomic-doc",
        "src/util/bad_atomic.cpp",
        "std::atomic<int> g_counter{0};\n",
        1,
    ),
]

SELF_TEST_CLEAN = [
    (
        "src/join/good_discard.cpp",
        "Status DoWrite(int x);\n"
        "void F(bool flag) {\n"
        "  Status st = DoWrite(1);\n"
        "  if (!st.ok()) return;\n"
        "  // Best-effort flush: failure handled by the next sync.\n"
        "  (void)DoWrite(2);\n"
        "}\n",
    ),
    (
        "src/topology/good_workers.cpp",
        "void F(unsigned threads, ExecContext* ctx) {\n"
        "  internal::RunWorkers(threads, [&](unsigned worker) {\n"
        "    ExecContext::Scope scope(ctx);\n"
        "    while (!scope.CheckIn()) DoChunk(worker);\n"
        "  });\n"
        "}\n",
    ),
    (
        "src/topology/parallel.cpp",
        "void F(int n, BatchArena<Batch>* arena) {\n"
        "  std::vector<int> scratch(static_cast<size_t>(n));\n"
        "  for (int i = 0; i < n; ++i) {\n"
        "    auto batch = arena->Acquire();\n"
        "    scratch.clear();\n"
        "    Use(batch.get(), scratch);\n"
        "  }\n"
        "}\n",
    ),
    (
        "src/util/good_order.cpp",
        "void A() {\n"
        "  std::lock_guard<std::mutex> l1(mu_a);\n"
        "  {\n"
        "    std::lock_guard<std::mutex> l2(mu_b);\n"
        "  }\n"
        "}\n"
        "void B() {\n"
        "  std::lock_guard<std::mutex> l1(mu_a);\n"
        "  {\n"
        "    std::lock_guard<std::mutex> l2(mu_b);\n"
        "  }\n"
        "}\n",
    ),
    (
        "src/util/good_atomic.cpp",
        'STJ_ATOMIC_DOC("demo counter; relaxed add, read post-join");\n'
        "std::atomic<int> g_counter{0};\n",
    ),
]


def self_test(frontend_choice):
    import tempfile

    global REPO
    real_repo = REPO
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        REPO = Path(tmp)
        try:
            for tag, rel, content, expected in SELF_TEST_VIOLATIONS:
                path = Path(tmp) / rel
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(content)
                files = [CodeFile(path, path.relative_to(Path(tmp)))]
                errors = run_checks(files, [tag], "lexical", None)
                hits = [e for e in errors if f"[{tag}]" in e]
                if len(hits) < expected:
                    failures.append(
                        f"seeded {tag} violations: expected >= {expected} "
                        f"finding(s), got {len(hits)}: {errors}")
                path.unlink()

            for rel, content in SELF_TEST_CLEAN:
                path = Path(tmp) / rel
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(content)
                files = [CodeFile(path, path.relative_to(Path(tmp)))]
                errors = run_checks(files, list(CHECKS), "lexical", None)
                if errors:
                    failures.append(f"clean file {rel} flagged: {errors}")
                path.unlink()
        finally:
            REPO = real_repo

    # When libclang is present, the AST backend must also catch the seeded
    # status discards (it subsumes the lexical findings).
    if frontend_choice != "lexical":
        try:
            fe = LibclangFrontend()
        except RuntimeError:
            fe = None
        if fe is not None:
            with tempfile.TemporaryDirectory() as tmp:
                path = Path(tmp) / "bad.cpp"
                path.write_text(
                    "namespace stj { struct Status { bool ok() const; }; }\n"
                    "stj::Status DoWrite(int);\n"
                    "void F() { DoWrite(1); }\n")
                try:
                    found = fe.unused_status_calls(path)
                except Exception as e:
                    found = []
                    failures.append(f"libclang self-test parse failed: {e}")
                if not any(line == 3 for line, _ in found):
                    failures.append(
                        "libclang backend missed the seeded status discard")

    for failure in failures:
        print(f"stj_analyzer self-test FAILED: {failure}", file=sys.stderr)
    if not failures:
        print("stj_analyzer self-test passed", file=sys.stderr)
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     add_help=True,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--frontend", choices=("auto", "lexical", "libclang"),
                        default="auto")
    parser.add_argument("--probe-libclang", action="store_true",
                        help="exit 0 iff the libclang frontend is usable")
    parser.add_argument("--checks", default=None,
                        help="comma-separated subset of: " + ",".join(CHECKS))
    parser.add_argument("--lock-table", action="store_true",
                        help="print the derived lock-order table")
    args = parser.parse_args()

    if args.probe_libclang:
        try:
            LibclangFrontend()
        except RuntimeError as e:
            print(f"stj_analyzer: libclang unusable: {e}", file=sys.stderr)
            return 2
        print("stj_analyzer: libclang usable")
        return 0

    if args.self_test:
        return self_test(args.frontend)
    return run_tree(args)


if __name__ == "__main__":
    sys.exit(main())
