// stj_cli — command-line front end for the stjoin library, mirroring the
// workflow of the paper's artifact repository:
//
//   stj_cli generate <dataset> <out.wkt> [--scale=X] [--seed=S]
//       Generate one of the ten synthetic datasets (TL, TW, TC, TZ, OBE,
//       OLE, OPE, OBN, OLN, OPN) as one WKT polygon per line.
//
//   stj_cli april <in.wkt> <out.april> [--grid-order=N]
//       Precompute APRIL P/C interval lists for every polygon of a WKT file
//       (grid over the file's own bounds) and store them in binary form.
//
//   stj_cli relate <wkt-polygon-1> <wkt-polygon-2>
//       Print the DE-9IM matrix and the most specific relation of two
//       polygons given inline as WKT strings.
//
//   stj_cli join <r.wkt> <s.wkt> [--method=pc|st2|op2|april]
//                [--grid-order=N] [--predicate=<relation>] [--threads=T]
//       Run the full topology join between two WKT files: MBR filter join,
//       then find-relation (default) or a relate_p predicate join. Prints
//       one "r_index s_index relation" line per non-disjoint pair plus a
//       summary to stderr.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "src/datasets/dataset_io.h"
#include "src/datasets/scenarios.h"
#include "src/de9im/relate_engine.h"
#include "src/geometry/wkt.h"
#include "src/raster/april_io.h"
#include "src/topology/parallel.h"
#include "src/util/timer.h"

namespace {

using namespace stj;

struct Flags {
  double scale = 1.0;
  uint64_t seed = 7;
  uint32_t grid_order = 12;
  std::string method = "pc";
  std::string predicate;
  unsigned threads = 0;
};

Flags ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      flags.scale = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      flags.seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--grid-order=", 13) == 0) {
      flags.grid_order = static_cast<uint32_t>(std::atoi(arg + 13));
    } else if (std::strncmp(arg, "--method=", 9) == 0) {
      flags.method = arg + 9;
    } else if (std::strncmp(arg, "--predicate=", 12) == 0) {
      flags.predicate = arg + 12;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      flags.threads = static_cast<unsigned>(std::atoi(arg + 10));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      std::exit(2);
    }
  }
  return flags;
}

std::optional<Method> ParseMethod(const std::string& name) {
  if (name == "st2") return Method::kST2;
  if (name == "op2") return Method::kOP2;
  if (name == "april") return Method::kApril;
  if (name == "pc") return Method::kPC;
  return std::nullopt;
}

std::optional<de9im::Relation> ParseRelation(const std::string& name) {
  for (int i = 0; i < de9im::kNumRelations; ++i) {
    const auto rel = static_cast<de9im::Relation>(i);
    if (name == ToString(rel)) return rel;
  }
  return std::nullopt;
}

int Usage() {
  std::fprintf(stderr,
               "usage: stj_cli <generate|april|relate|join> ... (see source "
               "header for details)\n");
  return 2;
}

int CmdGenerate(int argc, char** argv) {
  if (argc < 4) return Usage();
  const Flags flags = ParseFlags(argc, argv, 4);
  const Dataset dataset = BuildDataset(argv[2], flags.scale, flags.seed);
  if (dataset.objects.empty()) {
    std::fprintf(stderr, "unknown dataset '%s' (expected one of", argv[2]);
    for (const std::string& name : DatasetNames()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, ")\n");
    return 1;
  }
  if (!SaveWktDataset(argv[3], dataset)) {
    std::fprintf(stderr, "cannot write %s\n", argv[3]);
    return 1;
  }
  std::fprintf(stderr, "wrote %zu polygons (%zu vertices) to %s\n",
               dataset.objects.size(), dataset.TotalVertices(), argv[3]);
  return 0;
}

int CmdApril(int argc, char** argv) {
  if (argc < 4) return Usage();
  const Flags flags = ParseFlags(argc, argv, 4);
  Dataset dataset;
  if (!LoadWktDataset(argv[2], "input", &dataset)) {
    std::fprintf(stderr, "cannot read %s\n", argv[2]);
    return 1;
  }
  Box bounds;
  for (const SpatialObject& object : dataset.objects) {
    bounds.Expand(object.geometry.Bounds());
  }
  const RasterGrid grid(bounds, flags.grid_order);
  const std::vector<AprilApproximation> april =
      BuildAprilApproximations(dataset, grid);
  if (!SaveAprilFile(argv[3], april)) {
    std::fprintf(stderr, "cannot write %s\n", argv[3]);
    return 1;
  }
  size_t bytes = 0;
  for (const AprilApproximation& a : april) bytes += a.ByteSize();
  std::fprintf(stderr,
               "wrote %zu approximations (%.2f MB of intervals) to %s\n",
               april.size(), static_cast<double>(bytes) / 1e6, argv[3]);
  return 0;
}

int CmdRelate(int argc, char** argv) {
  if (argc < 4) return Usage();
  const auto a = ParseWktPolygon(argv[2]);
  const auto b = ParseWktPolygon(argv[3]);
  if (!a || !b) {
    std::fprintf(stderr, "WKT parse error\n");
    return 1;
  }
  const de9im::Matrix matrix = de9im::RelateMatrix(*a, *b);
  std::printf("DE-9IM:   %s\n", matrix.ToString().c_str());
  std::printf("relation: %s\n",
              ToString(de9im::MostSpecificRelation(matrix)));
  return 0;
}

int CmdJoin(int argc, char** argv) {
  if (argc < 4) return Usage();
  const Flags flags = ParseFlags(argc, argv, 4);
  const auto method = ParseMethod(flags.method);
  if (!method) {
    std::fprintf(stderr, "unknown method '%s'\n", flags.method.c_str());
    return 1;
  }
  Dataset r;
  Dataset s;
  if (!LoadWktDataset(argv[2], "R", &r) || !LoadWktDataset(argv[3], "S", &s)) {
    std::fprintf(stderr, "cannot read input datasets\n");
    return 1;
  }
  Box bounds;
  for (const SpatialObject& object : r.objects) {
    bounds.Expand(object.geometry.Bounds());
  }
  for (const SpatialObject& object : s.objects) {
    bounds.Expand(object.geometry.Bounds());
  }
  const RasterGrid grid(bounds, flags.grid_order);
  Timer timer;
  const std::vector<AprilApproximation> r_april =
      BuildAprilApproximations(r, grid);
  const std::vector<AprilApproximation> s_april =
      BuildAprilApproximations(s, grid);
  std::fprintf(stderr, "[april] built in %.2fs\n", timer.ElapsedSeconds());

  timer.Reset();
  const std::vector<CandidatePair> pairs = MbrJoin::Join(r.Mbrs(), s.Mbrs());
  std::fprintf(stderr, "[filter] %zu candidate pairs in %.2fs\n", pairs.size(),
               timer.ElapsedSeconds());

  const DatasetView r_view{&r.objects, &r_april};
  const DatasetView s_view{&s.objects, &s_april};
  timer.Reset();
  if (!flags.predicate.empty()) {
    const auto predicate = ParseRelation(flags.predicate);
    if (!predicate) {
      std::fprintf(stderr, "unknown predicate '%s'\n",
                   flags.predicate.c_str());
      return 1;
    }
    const ParallelRelateResult result = ParallelRelate(
        *method, r_view, s_view, pairs, *predicate, flags.threads);
    size_t matches = 0;
    for (size_t i = 0; i < pairs.size(); ++i) {
      if (result.matches[i] != 0) {
        ++matches;
        std::printf("%u %u %s\n", pairs[i].r_idx, pairs[i].s_idx,
                    ToString(*predicate));
      }
    }
    std::fprintf(stderr,
                 "[join] %zu/%zu pairs satisfy %s in %.2fs (%.1f%% refined)\n",
                 matches, pairs.size(), ToString(*predicate),
                 timer.ElapsedSeconds(), result.stats.UndeterminedPercent());
  } else {
    const ParallelJoinResult result =
        ParallelFindRelation(*method, r_view, s_view, pairs, flags.threads);
    size_t links = 0;
    for (size_t i = 0; i < pairs.size(); ++i) {
      if (result.relations[i] == de9im::Relation::kDisjoint) continue;
      ++links;
      std::printf("%u %u %s\n", pairs[i].r_idx, pairs[i].s_idx,
                  ToString(result.relations[i]));
    }
    std::fprintf(stderr,
                 "[join] %zu links from %zu candidates in %.2fs "
                 "(%.1f%% refined, method %s)\n",
                 links, pairs.size(), timer.ElapsedSeconds(),
                 result.stats.UndeterminedPercent(), ToString(*method));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "generate") == 0) return CmdGenerate(argc, argv);
  if (std::strcmp(argv[1], "april") == 0) return CmdApril(argc, argv);
  if (std::strcmp(argv[1], "relate") == 0) return CmdRelate(argc, argv);
  if (std::strcmp(argv[1], "join") == 0) return CmdJoin(argc, argv);
  return Usage();
}
