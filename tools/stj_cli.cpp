// stj_cli — command-line front end for the stjoin library, mirroring the
// workflow of the paper's artifact repository:
//
//   stj_cli generate <dataset> <out.wkt> [--scale=X] [--seed=S]
//       Generate one of the ten synthetic datasets (TL, TW, TC, TZ, OBE,
//       OLE, OPE, OBN, OLN, OPN) as one WKT polygon per line.
//
//   stj_cli april <in.wkt> <out.april> [--grid-order=N] [--threads=T]
//                 [--permissive] [--codec=raw|compact|blocked]
//       Precompute APRIL P/C interval lists for every polygon of a WKT file
//       (grid over the file's own bounds) and store them in binary form.
//       --threads fans the build out over T workers (0 = all cores); the
//       output is identical for every thread count. --codec picks the file
//       encoding: raw (version 2, plain u64 pairs, default), compact
//       (version 2, varint deltas), or blocked (version 3, the block codec
//       with skip headers that the fused filter path consumes directly).
//
//   stj_cli aprilcheck <in.april | shard-dir | shard-dir/manifest.stj>
//       Verify an APRIL file record by record and report corruption. For
//       version-3 files this additionally runs the deep codec audit on every
//       record (block-header consistency, P inside C, re-encode round-trip
//       byte equality). Given a shard-set directory (or its manifest.stj),
//       audits the shard set instead: manifest frame, every tile's header +
//       segment table, and every segment's payload checksum, with per-tile
//       corruption isolation mirroring the per-record behaviour of the
//       flat formats.
//
//   stj_cli relate <wkt-polygon-1> <wkt-polygon-2>
//       Print the DE-9IM matrix and the most specific relation of two
//       polygons given inline as WKT strings.
//
//   stj_cli join <r.wkt> <s.wkt> [--method=pc|st2|op2|april]
//                [--grid-order=N] [--predicate=<relation>] [--threads=T]
//                [--prepared-cache-mb=M] [--batch-size=B] [--queue-depth=Q]
//                [--time-stages] [--permissive]
//                [--deadline-ms=D] [--max-memory-mb=B]
//                [--decoded-cache-mb=M]
//                [--shard-dir=D] [--shard-cache-mb=M] [--partition-units=U]
//       Run the full topology join between two WKT files: MBR filter join,
//       then find-relation (default) or a relate_p predicate join. Prints
//       one "r_index s_index relation" line per non-disjoint pair plus a
//       summary to stderr. --prepared-cache-mb sizes the per-worker
//       prepared-geometry cache that amortises refinement index
//       construction across pairs (default 32; 0 disables it — results are
//       identical either way). --batch-size > 1 routes the join through the
//       staged SoA batch executor (refinement batches re-sorted for cache
//       locality; decisions identical to the default pair-at-a-time path)
//       and --queue-depth sizes its stage queue in batches. --time-stages
//       enables the per-stage timers and prints a stage/queue telemetry
//       summary (filter/refine seconds; batches, queue depth, stall time
//       for batched runs). --deadline-ms bounds the query's wall time
//       and --max-memory-mb its APRIL/tile-table memory; either flag makes
//       the run cancellable (Ctrl-C stops it cooperatively too). A tripped
//       run still prints every pair that was fully verified before the cut,
//       reports how much of the join was answered, and exits with the
//       matching code below. --decoded-cache-mb sizes the per-worker
//       decoded-record cache used on compressed APRIL inputs (default 8;
//       0 disables it — results identical either way).
//
//       --shard-dir=D switches the join to the out-of-core tile-sharded
//       path: both inputs are cost-balanced into tiles (--partition-units
//       targets computational units per tile; 0 = auto), persisted as
//       mmap-backed shard sets under D/r and D/s, and joined tile pair by
//       tile pair with at most --shard-cache-mb (default 256) of shards
//       resident. Results are identical to the in-memory join; only the
//       pair *order* differs (sharded output is sorted by r then s).
//       Find-relation only — --predicate cannot be combined with it.
//
// Input files are loaded strictly by default: the first malformed line
// aborts with a message naming the file, line, and byte offset. With
// --permissive, bad lines are repaired or skipped (reported to stderr) and
// the run continues on the clean remainder.
//
// Exit codes: 0 success; 2 usage error; 3 missing/unreadable/unwritable
// file; 4 malformed content (WKT parse error, APRIL structural corruption);
// 5 unknown dataset/method/predicate/codec name; 6 (aprilcheck) file loads
// but contains corrupt or missing records; 7 query deadline exceeded
// (--deadline-ms); 8 query cancelled (SIGINT); 9 query memory budget
// exhausted (--max-memory-mb); 10 (aprilcheck) version-3 file whose frames
// verify but whose block codec fails validation — a writer bug or targeted
// corruption rather than bit rot; 11 (aprilcheck) shard set whose manifest
// loads but with one or more corrupt tiles (failed segment checksum,
// structural damage, or a manifest/file disagreement).

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "src/datasets/dataset_io.h"
#include "src/datasets/scenarios.h"
#include "src/de9im/relate_engine.h"
#include "src/geometry/wkt.h"
#include "src/raster/april_io.h"
#include "src/raster/shard_io.h"
#include "src/topology/parallel.h"
#include "src/topology/shard_scheduler.h"
#include "src/util/exec_context.h"
#include "src/util/status.h"
#include "src/util/timer.h"

namespace {

using namespace stj;

enum ExitCode : int {
  kExitOk = 0,
  kExitUsage = 2,
  kExitIo = 3,
  kExitBadData = 4,
  kExitBadName = 5,
  kExitDegraded = 6,
  kExitDeadline = 7,
  kExitCancelled = 8,
  kExitBudget = 9,
  kExitCodecCorrupt = 10,
  kExitShardCorrupt = 11,
};

/// Maps a library Status to the documented exit codes.
int ExitCodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return kExitOk;
    case StatusCode::kNotFound:
    case StatusCode::kIoError: return kExitIo;
    case StatusCode::kInvalidArgument:
    case StatusCode::kDataLoss: return kExitBadData;
    case StatusCode::kDeadlineExceeded: return kExitDeadline;
    case StatusCode::kCancelled: return kExitCancelled;
    case StatusCode::kResourceExhausted: return kExitBudget;
    case StatusCode::kFailedPrecondition:
    case StatusCode::kInternal: return 1;
  }
  return 1;
}

int FailWith(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return ExitCodeFor(status);
}

struct Flags {
  double scale = 1.0;
  uint64_t seed = 7;
  uint32_t grid_order = 12;
  std::string method = "pc";
  std::string predicate;
  std::string codec = "raw";
  unsigned threads = 0;
  size_t prepared_cache_mb = kDefaultPreparedCacheBytes >> 20;
  size_t batch_size = 1;   ///< > 1 = staged SoA batch executor.
  size_t queue_depth = 8;  ///< Stage-queue capacity in batches.
  bool time_stages = false;
  bool permissive = false;
  uint64_t deadline_ms = 0;    ///< 0 = no deadline.
  size_t max_memory_mb = 0;    ///< 0 = no memory budget.
  size_t decoded_cache_mb = kDefaultDecodedCacheBytes >> 20;
  std::string shard_dir;       ///< Non-empty = out-of-core sharded join.
  size_t shard_cache_mb = 256;
  uint64_t partition_units = 0;  ///< Units per tile; 0 = auto.

  bool Bounded() const { return deadline_ms != 0 || max_memory_mb != 0; }
};

Flags ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      flags.scale = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      flags.seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--grid-order=", 13) == 0) {
      flags.grid_order = static_cast<uint32_t>(std::atoi(arg + 13));
    } else if (std::strncmp(arg, "--method=", 9) == 0) {
      flags.method = arg + 9;
    } else if (std::strncmp(arg, "--predicate=", 12) == 0) {
      flags.predicate = arg + 12;
    } else if (std::strncmp(arg, "--codec=", 8) == 0) {
      flags.codec = arg + 8;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      flags.threads = static_cast<unsigned>(std::atoi(arg + 10));
    } else if (std::strncmp(arg, "--prepared-cache-mb=", 20) == 0) {
      flags.prepared_cache_mb = static_cast<size_t>(std::atoll(arg + 20));
    } else if (std::strncmp(arg, "--batch-size=", 13) == 0) {
      flags.batch_size = static_cast<size_t>(std::atoll(arg + 13));
      if (flags.batch_size == 0) flags.batch_size = 1;
    } else if (std::strncmp(arg, "--queue-depth=", 14) == 0) {
      flags.queue_depth = static_cast<size_t>(std::atoll(arg + 14));
      if (flags.queue_depth == 0) flags.queue_depth = 1;
    } else if (std::strcmp(arg, "--time-stages") == 0) {
      flags.time_stages = true;
    } else if (std::strcmp(arg, "--permissive") == 0) {
      flags.permissive = true;
    } else if (std::strncmp(arg, "--deadline-ms=", 14) == 0) {
      flags.deadline_ms = static_cast<uint64_t>(std::atoll(arg + 14));
    } else if (std::strncmp(arg, "--max-memory-mb=", 16) == 0) {
      flags.max_memory_mb = static_cast<size_t>(std::atoll(arg + 16));
    } else if (std::strncmp(arg, "--decoded-cache-mb=", 19) == 0) {
      flags.decoded_cache_mb = static_cast<size_t>(std::atoll(arg + 19));
    } else if (std::strncmp(arg, "--shard-dir=", 12) == 0) {
      flags.shard_dir = arg + 12;
    } else if (std::strncmp(arg, "--shard-cache-mb=", 17) == 0) {
      flags.shard_cache_mb = static_cast<size_t>(std::atoll(arg + 17));
      if (flags.shard_cache_mb == 0) flags.shard_cache_mb = 1;
    } else if (std::strncmp(arg, "--partition-units=", 18) == 0) {
      flags.partition_units = static_cast<uint64_t>(std::atoll(arg + 18));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      std::exit(kExitUsage);
    }
  }
  return flags;
}

std::optional<Method> ParseMethod(const std::string& name) {
  if (name == "st2") return Method::kST2;
  if (name == "op2") return Method::kOP2;
  if (name == "april") return Method::kApril;
  if (name == "pc") return Method::kPC;
  return std::nullopt;
}

std::optional<de9im::Relation> ParseRelation(const std::string& name) {
  for (int i = 0; i < de9im::kNumRelations; ++i) {
    const auto rel = static_cast<de9im::Relation>(i);
    if (name == ToString(rel)) return rel;
  }
  return std::nullopt;
}

int Usage() {
  std::fprintf(stderr,
               "usage: stj_cli <generate|april|aprilcheck|relate|join> ... "
               "(see source header for details)\n");
  return kExitUsage;
}

/// Encodes a set of approximations into the blocked codec, keeping corrupt
/// entries as placeholders (shared by `april --codec=blocked` and the
/// sharded join path, which persists the compressed form).
CompressedAprilStore CompressApproximations(
    const std::vector<AprilApproximation>& april) {
  CompressedAprilStore cstore;
  cstore.Reserve(april.size(), /*blocks=*/0, /*payload_bytes=*/0);
  for (const AprilApproximation& a : april) {
    if (!a.usable) {
      cstore.AppendCorruptPlaceholder();
      continue;
    }
    const AprilView view(a);
    cstore.AppendEncoded(view.conservative, view.progressive);
  }
  return cstore;
}

/// Loads a WKT dataset honouring --permissive; on success prints a summary
/// of any repairs/skips, on failure prints the precise Status.
Status LoadInput(const std::string& path, const std::string& name,
                 bool permissive, Dataset* out) {
  LoadOptions options;
  options.mode = permissive ? LoadMode::kPermissive : LoadMode::kStrict;
  LoadReport report;
  Status status = LoadWktDataset(path, name, options, out, &report);
  if (!status.ok()) return status;
  if (report.repaired != 0 || report.skipped != 0) {
    std::fprintf(stderr,
                 "[load] %s: %llu lines — %llu accepted, %llu repaired, "
                 "%llu skipped\n",
                 path.c_str(), static_cast<unsigned long long>(report.lines),
                 static_cast<unsigned long long>(report.accepted),
                 static_cast<unsigned long long>(report.repaired),
                 static_cast<unsigned long long>(report.skipped));
    for (const LineIssue& issue : report.issues) {
      const char* action =
          issue.action == LineIssue::Action::kRepaired ? "repaired" : "skipped";
      std::fprintf(stderr, "[load]   %s:%llu: %s (%s)\n", path.c_str(),
                   static_cast<unsigned long long>(issue.line),
                   issue.reason.c_str(), action);
    }
    if (report.issues_dropped != 0) {
      std::fprintf(stderr, "[load]   ... and %llu more issues\n",
                   static_cast<unsigned long long>(report.issues_dropped));
    }
  }
  return status;
}

int CmdGenerate(int argc, char** argv) {
  if (argc < 4) return Usage();
  const Flags flags = ParseFlags(argc, argv, 4);
  const Dataset dataset = BuildDataset(argv[2], flags.scale, flags.seed);
  if (dataset.objects.empty()) {
    std::fprintf(stderr, "unknown dataset '%s' (expected one of", argv[2]);
    for (const std::string& name : DatasetNames()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, ")\n");
    return kExitBadName;
  }
  if (!SaveWktDataset(argv[3], dataset)) {
    return FailWith(Status::IoError("cannot write dataset").WithFile(argv[3]));
  }
  std::fprintf(stderr, "wrote %zu polygons (%zu vertices) to %s\n",
               dataset.objects.size(), dataset.TotalVertices(), argv[3]);
  return kExitOk;
}

int CmdApril(int argc, char** argv) {
  if (argc < 4) return Usage();
  const Flags flags = ParseFlags(argc, argv, 4);
  Dataset dataset;
  if (Status st = LoadInput(argv[2], "input", flags.permissive, &dataset);
      !st.ok()) {
    return FailWith(st);
  }
  Box bounds;
  for (const SpatialObject& object : dataset.objects) {
    bounds.Expand(object.geometry.Bounds());
  }
  const RasterGrid grid(bounds, flags.grid_order);
  Timer timer;
  const std::vector<AprilApproximation> april =
      BuildAprilApproximations(dataset, grid, flags.threads);
  const double preprocess_seconds = timer.ElapsedSeconds();
  bool saved = false;
  if (flags.codec == "raw") {
    saved = SaveAprilFile(argv[3], april);
  } else if (flags.codec == "compact") {
    saved = SaveAprilFileCompressed(argv[3], april);
  } else if (flags.codec == "blocked") {
    saved = SaveAprilStoreBlocked(argv[3], CompressApproximations(april));
  } else {
    std::fprintf(stderr, "unknown codec '%s' (expected raw, compact, or "
                 "blocked)\n", flags.codec.c_str());
    return kExitBadName;
  }
  if (!saved) {
    return FailWith(
        Status::IoError("cannot write APRIL file").WithFile(argv[3]));
  }
  size_t bytes = 0;
  for (const AprilApproximation& a : april) bytes += a.ByteSize();
  std::fprintf(stderr,
               "wrote %zu approximations (%.2f MB of intervals) to %s "
               "(codec %s, preprocess %.2fs)\n",
               april.size(), static_cast<double>(bytes) / 1e6, argv[3],
               flags.codec.c_str(), preprocess_seconds);
  return kExitOk;
}

/// aprilcheck over a shard set: the full integrity audit (every segment's
/// payload checksum is read and verified). Tiles fail independently; any
/// corrupt tile yields the distinct shard-corruption exit code.
int CheckShardSet(const std::string& dir) {
  ShardCheckReport report;
  if (Status st = ValidateShardSet(dir, &report); !st.ok()) {
    return FailWith(st);
  }
  std::fprintf(stderr,
               "%s: shard set, %u tiles, %llu segments verified (%.2f MB), "
               "%u corrupt\n",
               dir.c_str(), report.tiles,
               static_cast<unsigned long long>(report.segments_checked),
               static_cast<double>(report.bytes_checked) / 1e6,
               report.tiles_corrupt);
  for (const std::string& issue : report.issues) {
    std::fprintf(stderr, "  %s\n", issue.c_str());
  }
  if (report.issues_dropped != 0) {
    std::fprintf(stderr, "  ... and %llu more issues\n",
                 static_cast<unsigned long long>(report.issues_dropped));
  }
  return report.Corrupt() ? kExitShardCorrupt : kExitOk;
}

int CmdAprilCheck(int argc, char** argv) {
  if (argc < 3) return Usage();
  if (std::string shard_dir; ResolveShardSetDir(argv[2], &shard_dir)) {
    return CheckShardSet(shard_dir);
  }
  std::vector<AprilApproximation> approximations;
  AprilLoadReport report;
  const Status status =
      LoadAprilFileDetailed(argv[2], &approximations, &report);
  if (!status.ok()) return FailWith(status);
  const char* encoding = report.version == 3     ? "blocked"
                         : report.compressed     ? "compressed"
                                                 : "raw";
  std::fprintf(stderr,
               "%s: version %u (%s), %llu declared, %llu verified, "
               "%llu corrupt, %llu codec-corrupt%s\n",
               argv[2], report.version, encoding,
               static_cast<unsigned long long>(report.declared_count),
               static_cast<unsigned long long>(report.loaded),
               static_cast<unsigned long long>(report.corrupt),
               static_cast<unsigned long long>(report.codec_corrupt),
               report.truncated ? ", TRUNCATED" : "");
  for (const uint64_t index : report.corrupt_indices) {
    std::fprintf(stderr, "  corrupt record: object %llu\n",
                 static_cast<unsigned long long>(index));
  }
  uint64_t deep_bad = 0;
  if (report.version == 3) {
    // Deep codec audit: reload keeping the block codec and re-verify every
    // usable record beyond what the loader already validated (P inside C and
    // re-encode round-trip byte equality, which catches valid-but-non-
    // minimal varint encodings a tampered writer could produce).
    CompressedAprilStore cstore;
    if (Status st = LoadCompressedAprilStore(argv[2], &cstore); !st.ok()) {
      return FailWith(st);
    }
    for (size_t i = 0; i < cstore.Count(); ++i) {
      if (!cstore.Usable(i)) continue;
      if (const std::string err = cstore.DeepValidateRecord(i); !err.empty()) {
        ++deep_bad;
        std::fprintf(stderr, "  codec corrupt record: object %zu: %s\n", i,
                     err.c_str());
      }
    }
    if (deep_bad != 0) {
      std::fprintf(stderr, "  deep codec audit: %llu record(s) failed\n",
                   static_cast<unsigned long long>(deep_bad));
    }
  }
  if (report.codec_corrupt != 0 || deep_bad != 0) return kExitCodecCorrupt;
  return report.Degraded() ? kExitDegraded : kExitOk;
}

int CmdRelate(int argc, char** argv) {
  if (argc < 4) return Usage();
  const Result<Polygon> a = ParseWktPolygon(argv[2]);
  if (!a.has_value()) {
    return FailWith(Status(a.status()).WithFile("<argument 1>"));
  }
  const Result<Polygon> b = ParseWktPolygon(argv[3]);
  if (!b.has_value()) {
    return FailWith(Status(b.status()).WithFile("<argument 2>"));
  }
  const de9im::Matrix matrix = de9im::RelateMatrix(*a, *b);
  std::printf("DE-9IM:   %s\n", matrix.ToString().c_str());
  std::printf("relation: %s\n",
              ToString(de9im::MostSpecificRelation(matrix)));
  return kExitOk;
}

/// The join command's ExecContext, reachable from the SIGINT handler. The
/// handler only performs a lock-free CAS plus clock_gettime (both
/// async-signal-safe), which is exactly what cooperative cancellation is
/// for: the workers notice at their next check-in and stop at a pair
/// boundary.
ExecContext* g_join_exec = nullptr;

void HandleInterrupt(int) {
  if (g_join_exec != nullptr) g_join_exec->Cancel();
  std::signal(SIGINT, SIG_DFL);  // a second Ctrl-C kills the process
}

/// Prints the prepared-geometry cache summary for a join (hits/misses are
/// per-side lookups: two per refined pair). Silent when the cache was
/// disabled or nothing was refined.
void ReportPreparedStats(const PipelineStats& stats) {
  const uint64_t lookups = stats.prepared_hits + stats.prepared_misses;
  if (lookups == 0) return;
  std::fprintf(stderr,
               "[join] prepared cache: %llu hits / %llu misses (%.1f%% hit "
               "rate)\n",
               static_cast<unsigned long long>(stats.prepared_hits),
               static_cast<unsigned long long>(stats.prepared_misses),
               100.0 * static_cast<double>(stats.prepared_hits) /
                   static_cast<double>(lookups));
}

/// Prints the --time-stages summary: per-stage seconds plus, when the run
/// went through the staged batch executor, its queue telemetry. Silent
/// unless stage timing was requested.
void ReportStageStats(const PipelineStats& stats, bool time_stages) {
  if (!time_stages) return;
  std::fprintf(stderr, "[join] stages: filter %.3fs, refine %.3fs\n",
               stats.filter_seconds, stats.refine_seconds);
  // Decoded-record cache telemetry (compressed APRIL inputs). Printed for
  // both executors — the pair-at-a-time path folds the same counters into
  // PipelineStats as the batched one.
  const uint64_t decoded = stats.decoded_hits + stats.decoded_misses;
  if (decoded != 0) {
    std::fprintf(stderr,
                 "[join] decoded cache: %llu hits / %llu misses (%.1f%% hit "
                 "rate, %llu corrupt)\n",
                 static_cast<unsigned long long>(stats.decoded_hits),
                 static_cast<unsigned long long>(stats.decoded_misses),
                 100.0 * static_cast<double>(stats.decoded_hits) /
                     static_cast<double>(decoded),
                 static_cast<unsigned long long>(stats.decoded_corrupt));
  }
  if (stats.batches != 0) {
    std::fprintf(stderr,
                 "[join] batch queue: %llu batches (%llu enqueued / %llu "
                 "dequeued), max depth %llu, stall %.3fs\n",
                 static_cast<unsigned long long>(stats.batches),
                 static_cast<unsigned long long>(stats.batches_enqueued),
                 static_cast<unsigned long long>(stats.batches_dequeued),
                 static_cast<unsigned long long>(stats.queue_max_depth),
                 stats.queue_stall_seconds);
  }
}

/// Reports a cut-short refinement stage. Every printed pair was fully
/// verified before the cut (loss-less cancellation), so the partial output
/// is a correct subset of the full answer.
int ReportStopped(const Status& status, const PartialResult& partial,
                  const PipelineStats& stats) {
  std::fprintf(stderr,
               "[join] stopped early: %s — %llu/%llu pairs answered "
               "(cancel latency %llu us, %llu check-ins)\n",
               status.ToString().c_str(),
               static_cast<unsigned long long>(partial.completed),
               static_cast<unsigned long long>(partial.total),
               static_cast<unsigned long long>(stats.cancel_latency_us),
               static_cast<unsigned long long>(stats.checkins));
  return ExitCodeFor(status);
}

int CmdJoin(int argc, char** argv) {
  if (argc < 4) return Usage();
  const Flags flags = ParseFlags(argc, argv, 4);
  const auto method = ParseMethod(flags.method);
  if (!method) {
    std::fprintf(stderr, "unknown method '%s'\n", flags.method.c_str());
    return kExitBadName;
  }
  Dataset r;
  Dataset s;
  if (Status st = LoadInput(argv[2], "R", flags.permissive, &r); !st.ok()) {
    return FailWith(st);
  }
  if (Status st = LoadInput(argv[3], "S", flags.permissive, &s); !st.ok()) {
    return FailWith(st);
  }
  Box bounds;
  for (const SpatialObject& object : r.objects) {
    bounds.Expand(object.geometry.Bounds());
  }
  for (const SpatialObject& object : s.objects) {
    bounds.Expand(object.geometry.Bounds());
  }
  const RasterGrid grid(bounds, flags.grid_order);

  // Either bounding flag makes the whole query cancellable; Ctrl-C then
  // cancels cooperatively instead of killing the process mid-write.
  ExecContext exec;
  ExecContext* exec_ptr = nullptr;
  if (flags.Bounded()) {
    if (flags.deadline_ms != 0) {
      exec.SetDeadlineAfter(std::chrono::milliseconds(flags.deadline_ms));
    }
    if (flags.max_memory_mb != 0) {
      exec.SetMemoryBudget(flags.max_memory_mb << 20);
    }
    exec_ptr = &exec;
    g_join_exec = &exec;
    std::signal(SIGINT, HandleInterrupt);
  }

  Timer timer;
  const std::vector<AprilApproximation> r_april =
      BuildAprilApproximations(r, grid, flags.threads,
                               /*per_cell_oracle=*/false, exec_ptr);
  const std::vector<AprilApproximation> s_april =
      BuildAprilApproximations(s, grid, flags.threads,
                               /*per_cell_oracle=*/false, exec_ptr);
  std::fprintf(stderr, "[april] built %zu+%zu approximations (preprocess "
               "%.2fs)\n",
               r_april.size(), s_april.size(), timer.ElapsedSeconds());
  if (exec_ptr != nullptr && exec_ptr->StopRequested()) {
    std::fprintf(stderr, "[join] stopped during preprocessing: no pairs "
                 "answered\n");
    return FailWith(exec_ptr->ToStatus());
  }

  const JoinOptions join_options{
      .num_threads = flags.threads,
      .time_stages = flags.time_stages,
      .prepared_cache_bytes = flags.prepared_cache_mb << 20,
      .exec = exec_ptr,
      .batch_size = flags.batch_size,
      .queue_depth = flags.queue_depth,
      .decoded_cache_bytes = flags.decoded_cache_mb << 20};

  if (!flags.shard_dir.empty()) {
    // Out-of-core path: persist both sides as shard sets, then join tile
    // pair by tile pair with a bounded resident-shard cache. Same links as
    // the in-memory join below, printed in sorted (r, s) order.
    if (!flags.predicate.empty()) {
      std::fprintf(stderr,
                   "--predicate cannot be combined with --shard-dir\n");
      return kExitUsage;
    }
    timer.Reset();
    PartitionOptions partition_options;
    partition_options.units_per_tile = flags.partition_units;
    const auto build_side =
        [&](const char* sub, const Dataset& dataset,
            const std::vector<AprilApproximation>& april) -> Status {
      TilePartition partition;
      ShardWriteStats write_stats;
      Status st = BuildShardSet(flags.shard_dir + sub, dataset.objects,
                                CompressApproximations(april),
                                partition_options, &partition, &write_stats);
      if (!st.ok()) return st;
      std::fprintf(stderr,
                   "[shard] %s%s: %u tiles, %.2f MB, imbalance %.2f\n",
                   flags.shard_dir.c_str(), sub, write_stats.tiles,
                   static_cast<double>(write_stats.bytes_written) / 1e6,
                   partition.MaxImbalance());
      return st;
    };
    if (Status st = build_side("/r", r, r_april); !st.ok()) {
      return FailWith(st);
    }
    if (Status st = build_side("/s", s, s_april); !st.ok()) {
      return FailWith(st);
    }
    ShardSet r_shards;
    ShardSet s_shards;
    if (Status st = ShardSet::Open(flags.shard_dir + "/r", &r_shards);
        !st.ok()) {
      return FailWith(st);
    }
    if (Status st = ShardSet::Open(flags.shard_dir + "/s", &s_shards);
        !st.ok()) {
      return FailWith(st);
    }
    std::fprintf(stderr, "[shard] built both shard sets in %.2fs\n",
                 timer.ElapsedSeconds());

    timer.Reset();
    ShardJoinOptions shard_options;
    shard_options.join = join_options;
    shard_options.shard_cache_bytes = flags.shard_cache_mb << 20;
    const ShardJoinResult result =
        ShardedFindRelation(*method, r_shards, s_shards, shard_options);
    size_t links = 0;
    for (size_t i = 0; i < result.pairs.size(); ++i) {
      if (result.relations[i] == de9im::Relation::kDisjoint) continue;
      ++links;
      std::printf("%u %u %s\n", result.pairs[i].r_idx, result.pairs[i].s_idx,
                  ToString(result.relations[i]));
    }
    const ShardStats& ss = result.shard_stats;
    std::fprintf(stderr,
                 "[join] %zu links from %llu answered pairs in %.2fs "
                 "(%.1f%% refined, method %s, sharded)\n",
                 links, static_cast<unsigned long long>(ss.pairs_emitted),
                 timer.ElapsedSeconds(),
                 result.stats.UndeterminedPercent(), ToString(*method));
    std::fprintf(stderr,
                 "[shard] %llu/%llu tasks, %llu loads / %llu hits, "
                 "%llu evictions, %.2f MB mapped, %.2f MB faulted eagerly, "
                 "cache peak %.2f MB, %llu pairs deduped\n",
                 static_cast<unsigned long long>(ss.tasks_run),
                 static_cast<unsigned long long>(ss.tasks),
                 static_cast<unsigned long long>(ss.shard_loads),
                 static_cast<unsigned long long>(ss.shard_hits),
                 static_cast<unsigned long long>(ss.shards_evicted),
                 static_cast<double>(ss.bytes_mapped) / 1e6,
                 static_cast<double>(ss.bytes_faulted) / 1e6,
                 static_cast<double>(ss.cache_peak_bytes) / 1e6,
                 static_cast<unsigned long long>(ss.pairs_deduped));
    ReportPreparedStats(result.stats);
    ReportStageStats(result.stats, flags.time_stages);
    if (!result.status.ok()) {
      std::fprintf(stderr,
                   "[join] stopped early: %s — %llu pairs answered before "
                   "the cut (all printed links are final)\n",
                   result.status.ToString().c_str(),
                   static_cast<unsigned long long>(ss.pairs_emitted));
      return ExitCodeFor(result.status);
    }
    return kExitOk;
  }

  timer.Reset();
  MbrJoin::Options filter_options;
  filter_options.num_threads = flags.threads;  // 0 = hardware concurrency
  filter_options.exec = exec_ptr;
  const std::vector<CandidatePair> pairs =
      MbrJoin::Join(r.Mbrs(), s.Mbrs(), filter_options);
  std::fprintf(stderr, "[filter] %zu candidate pairs in %.2fs\n", pairs.size(),
               timer.ElapsedSeconds());
  if (exec_ptr != nullptr && exec_ptr->StopRequested()) {
    // A cut-short filter result is an incomplete candidate set, not a
    // smaller join — nothing downstream of it may be reported.
    std::fprintf(stderr, "[join] stopped during the filter stage: no pairs "
                 "answered\n");
    return FailWith(exec_ptr->ToStatus());
  }

  const DatasetView r_view{&r.objects, &r_april};
  const DatasetView s_view{&s.objects, &s_april};
  timer.Reset();
  if (!flags.predicate.empty()) {
    const auto predicate = ParseRelation(flags.predicate);
    if (!predicate) {
      std::fprintf(stderr, "unknown predicate '%s'\n",
                   flags.predicate.c_str());
      return kExitBadName;
    }
    const ParallelRelateResult result = ParallelRelate(
        *method, r_view, s_view, pairs, *predicate, join_options);
    size_t matches = 0;
    for (size_t i = 0; i < pairs.size(); ++i) {
      if (result.partial.Answered(i) && result.matches[i] != 0) {
        ++matches;
        std::printf("%u %u %s\n", pairs[i].r_idx, pairs[i].s_idx,
                    ToString(*predicate));
      }
    }
    std::fprintf(stderr,
                 "[join] %zu/%zu pairs satisfy %s in %.2fs (%.1f%% refined)\n",
                 matches, pairs.size(), ToString(*predicate),
                 timer.ElapsedSeconds(), result.stats.UndeterminedPercent());
    ReportPreparedStats(result.stats);
    ReportStageStats(result.stats, flags.time_stages);
    if (!result.status.ok()) {
      return ReportStopped(result.status, result.partial, result.stats);
    }
  } else {
    const ParallelJoinResult result =
        ParallelFindRelation(*method, r_view, s_view, pairs, join_options);
    size_t links = 0;
    for (size_t i = 0; i < pairs.size(); ++i) {
      if (!result.partial.Answered(i)) continue;
      if (result.relations[i] == de9im::Relation::kDisjoint) continue;
      ++links;
      std::printf("%u %u %s\n", pairs[i].r_idx, pairs[i].s_idx,
                  ToString(result.relations[i]));
    }
    std::fprintf(stderr,
                 "[join] %zu links from %zu candidates in %.2fs "
                 "(%.1f%% refined, method %s)\n",
                 links, pairs.size(), timer.ElapsedSeconds(),
                 result.stats.UndeterminedPercent(), ToString(*method));
    ReportPreparedStats(result.stats);
    ReportStageStats(result.stats, flags.time_stages);
    if (result.stats.fallback_refined != 0) {
      std::fprintf(stderr,
                   "[join] degraded: %llu pairs fell back to refinement "
                   "(missing/corrupt approximations)\n",
                   static_cast<unsigned long long>(
                       result.stats.fallback_refined));
    }
    if (!result.status.ok()) {
      return ReportStopped(result.status, result.partial, result.stats);
    }
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "generate") == 0) return CmdGenerate(argc, argv);
  if (std::strcmp(argv[1], "april") == 0) return CmdApril(argc, argv);
  if (std::strcmp(argv[1], "aprilcheck") == 0) {
    return CmdAprilCheck(argc, argv);
  }
  if (std::strcmp(argv[1], "relate") == 0) return CmdRelate(argc, argv);
  if (std::strcmp(argv[1], "join") == 0) return CmdJoin(argc, argv);
  return Usage();
}
